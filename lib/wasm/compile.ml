(** Closure-compiled execution tier.

    [prepare] translates a validated module once into a tree of OCaml
    closures — threaded code — that replaces the interpreter's
    per-instruction dispatch:

    - the operand stack is an unboxed pair of parallel arrays — a
      [float array] holding raw 64-bit payloads (integers travel through
      [Int64.float_of_bits], which compiles to a register move) and a
      [Bytes.t] of one-byte type tags — owned by the prepared module and
      reused across payloads, so pushing a value is two plain stores with
      no allocation and no write barrier;
    - locals live in-frame on the same stack: a call turns its arguments
      into locals in place and zero-fills the declared extras, so entering
      a function allocates nothing;
    - fuel metering is folded into segment-entry checks: a maximal run of
      straight-line instructions is pre-charged in one comparison, with
      the unexecuted tail refunded when a branch leaves the run early and
      an exact per-instruction slow path when the budget is nearly spent;
    - branching is closure return codes (0 = fall through, [d+1] = branch
      out [d] levels, -1 = return) instead of exceptions;
    - selected host imports (the instrumentation hooks) can be compiled to
      direct unboxed callbacks via [fast_host]: the hook argument stays
      unboxed from the producing instruction to the callback.

    Values only take boxed [Values.value] form at the cold boundaries —
    resolver-routed host calls, globals, fallback functions and the
    public [invoke] interface.

    The determinism contract is absolute: for any validated module the
    compiled tier must be observationally identical to {!Interp} — same
    results, same trap and exhaustion messages raised at the same
    instruction, same host-call order and arguments, same fuel left on
    every path the embedder can observe.  Functions containing an
    instruction the compiler does not cover (or that the [exclude]
    predicate vetoes) fall back to the interpreter transparently: the
    instance's function table always holds real [Wasm_func] entries, so a
    fallback function and everything it calls simply run interpreted.

    Precondition: the module has passed {!Validate.check_module}.  The
    compiler replicates the interpreter's dynamic checks (stack
    underflow, type-confused operands, table bounds) so unvalidated
    modules still trap with identical messages on the paths validation
    would reject, but stack discipline inside a block is only enforced at
    block granularity and local indices must be in range. *)

type fast_host =
  | Fast_i32 of (int32 -> unit)
  | Fast_i64 of (int64 -> unit)
  | Fast_f32 of (float -> unit)
  | Fast_f64 of (float -> unit)

exception Unsupported

(* ------------------------------------------------------------------ *)
(* Runtime representation                                              *)
(* ------------------------------------------------------------------ *)

(* Stack slots are (64-bit payload, type tag) pairs split across two
   parallel arrays.  A [float array] is OCaml's only unboxed 64-bit
   container: stores are raw 8-byte moves that preserve every bit
   pattern (including NaN payloads), and [Int64.bits_of_float] /
   [Int64.float_of_bits] are [@@unboxed] externals, so integer payloads
   round-trip without allocating.  i32 values are stored sign-extended;
   f32 values are stored as their exact double widening (single
   precision embeds losslessly). *)
let tag_i32 = '\000'
let tag_i64 = '\001'
let tag_f32 = '\002'
let tag_f64 = '\003'

let tag_of_type : Types.num_type -> char = function
  | Types.I32 -> tag_i32
  | Types.I64 -> tag_i64
  | Types.F32 -> tag_f32
  | Types.F64 -> tag_f64

let[@inline] f_of_i32 (x : int32) = Int64.float_of_bits (Int64.of_int32 x)
let[@inline] f_of_i64 (x : int64) = Int64.float_of_bits x
let[@inline] i32_of_f (b : float) = Int64.to_int32 (Int64.bits_of_float b)
let[@inline] i64_of_f (b : float) = Int64.bits_of_float b

(* i32 "true": the payload of [I32 1l]. *)
let f_true = Int64.float_of_bits 1L

(* A compiled instruction or body: runs against the mutable runtime [rt]
   with the current frame's locals at stack offset [lbase], returning a
   branch code. *)
type rt = {
  inst : Interp.instance;
  mutable stk_bits : float array;  (** raw 64-bit slot payloads *)
  mutable stk_tags : Bytes.t;  (** one type tag per slot *)
  mutable sp : int;
  tsrc : int array;
      (** table slot -> absolute function index (mirrors the element
          segments), for dispatching indirect calls to compiled bodies *)
  prep : prepared;
}

and prepared = {
  p_module : Ast.module_;
  p_nimp : int;
  p_funcs : cfunc option array;  (** by local index; [None] = fallback *)
  mutable p_bits : float array;
      (** operand stack payloads, reused across payloads *)
  mutable p_tags : Bytes.t;
  mutable p_busy : bool;
  mutable p_compiled : int;
  mutable p_fallback : int;
}

and cfunc = {
  cf_code : rt -> int -> int;
  cf_ltags : string;  (** tags of the declared (non-parameter) locals *)
  cf_nparams : int;
  cf_nlocals : int;  (** parameters + declared locals *)
  cf_arity : int;
}

type op = rt -> int -> int

(* ------------------------------------------------------------------ *)
(* Operand stack                                                       *)
(* ------------------------------------------------------------------ *)

let ensure_capacity rt n =
  if n > Array.length rt.stk_bits then begin
    let cap = ref (2 * Array.length rt.stk_bits) in
    while n > !cap do
      cap := 2 * !cap
    done;
    let bits = Array.make !cap 0.0 in
    Array.blit rt.stk_bits 0 bits 0 rt.sp;
    let tags = Bytes.make !cap '\000' in
    Bytes.blit rt.stk_tags 0 tags 0 rt.sp;
    rt.stk_bits <- bits;
    rt.stk_tags <- tags
  end

let[@inline] push_raw rt b t =
  let sp = rt.sp in
  if sp >= Array.length rt.stk_bits then ensure_capacity rt (sp + 1);
  Array.unsafe_set rt.stk_bits sp b;
  Bytes.unsafe_set rt.stk_tags sp t;
  rt.sp <- sp + 1

let push_value rt : Values.value -> unit = function
  | Values.I32 x -> push_raw rt (f_of_i32 x) tag_i32
  | Values.I64 x -> push_raw rt (f_of_i64 x) tag_i64
  | Values.F32 x -> push_raw rt x tag_f32
  | Values.F64 x -> push_raw rt x tag_f64

(* Pop one slot and return its index; the slot's payload stays readable
   until the next push overwrites it. *)
let[@inline] pop_slot rt : int =
  let sp = rt.sp - 1 in
  if sp < 0 then Values.trap "stack underflow";
  rt.sp <- sp;
  sp

let value_of_slot rt i : Values.value =
  let b = Array.unsafe_get rt.stk_bits i in
  match Bytes.unsafe_get rt.stk_tags i with
  | '\000' -> Values.I32 (i32_of_f b)
  | '\001' -> Values.I64 (i64_of_f b)
  | '\002' -> Values.F32 b
  | _ -> Values.F64 b

let pop_value rt : Values.value = value_of_slot rt (pop_slot rt)

(* The slot's 64-bit view, as {!Values.raw_bits} would report it. *)
let raw_bits_of_slot rt i : int64 =
  let b = Array.unsafe_get rt.stk_bits i in
  match Bytes.unsafe_get rt.stk_tags i with
  | '\000' -> Int64.logand (Int64.bits_of_float b) 0xFFFF_FFFFL
  | '\001' -> Int64.bits_of_float b
  | '\002' ->
      Int64.logand (Int64.of_int32 (Int32.bits_of_float b)) 0xFFFF_FFFFL
  | _ -> Int64.bits_of_float b

(* Typed pops with [Values.as_*] error behaviour: the mismatch path
   reboxes the offender so the trap message matches the interpreter's. *)
let[@inline] pop_as_i32 rt : int32 =
  let i = pop_slot rt in
  if Bytes.unsafe_get rt.stk_tags i = '\000' then
    i32_of_f (Array.unsafe_get rt.stk_bits i)
  else Values.as_i32 (value_of_slot rt i)

let[@inline] pop_as_i64 rt : int64 =
  let i = pop_slot rt in
  if Bytes.unsafe_get rt.stk_tags i = '\001' then
    i64_of_f (Array.unsafe_get rt.stk_bits i)
  else Values.as_i64 (value_of_slot rt i)

let[@inline] pop_as_f32 rt : float =
  let i = pop_slot rt in
  if Bytes.unsafe_get rt.stk_tags i = '\002' then
    Array.unsafe_get rt.stk_bits i
  else Values.as_f32 (value_of_slot rt i)

let[@inline] pop_as_f64 rt : float =
  let i = pop_slot rt in
  if Bytes.unsafe_get rt.stk_tags i = '\003' then
    Array.unsafe_get rt.stk_bits i
  else Values.as_f64 (value_of_slot rt i)

(* Collapse the values a block produced down onto its entry stack
   pointer: keep the top [arity], discard everything between.  This is
   the array form of the interpreter's [take arity st] at block exit. *)
let collapse rt sp0 arity =
  let sp = rt.sp in
  if sp - sp0 < arity then Values.trap "stack underflow";
  if arity > 0 then begin
    let bits = rt.stk_bits and tags = rt.stk_tags in
    for i = 0 to arity - 1 do
      Array.unsafe_set bits (sp0 + i) (Array.unsafe_get bits (sp - arity + i));
      Bytes.unsafe_set tags (sp0 + i) (Bytes.unsafe_get tags (sp - arity + i))
    done
  end;
  rt.sp <- sp0 + arity

(* ------------------------------------------------------------------ *)
(* Calls                                                               *)
(* ------------------------------------------------------------------ *)

(* Invoke a compiled function: the top [cf_nparams] stack values become
   the frame's first locals in place, the declared extras are zero-filled
   above them, and on return the top [cf_arity] results collapse onto the
   frame base.  Nothing is allocated. *)
let invoke_cf rt (cf : cfunc) =
  let base = rt.sp - cf.cf_nparams in
  if base < 0 then Values.trap "stack underflow";
  let inst = rt.inst in
  if inst.Interp.depth >= inst.Interp.max_depth then
    raise (Interp.Exhaustion "call stack exhausted");
  inst.Interp.depth <- inst.Interp.depth + 1;
  let floor = base + cf.cf_nlocals in
  ensure_capacity rt floor;
  let bits = rt.stk_bits and tags = rt.stk_tags in
  let ltags = cf.cf_ltags in
  for i = cf.cf_nparams to cf.cf_nlocals - 1 do
    Array.unsafe_set bits (base + i) 0.0;
    Bytes.unsafe_set tags (base + i) (String.unsafe_get ltags (i - cf.cf_nparams))
  done;
  rt.sp <- floor;
  (* Any branch code at function toplevel — fall-through, return, or a
     branch targeting the function block — means "function done", like
     the interpreter catching [Return_exn] and [Br_exn (0, _)]. *)
  (match cf.cf_code rt base with
   | (_ : int) -> ()
   | exception e ->
       inst.Interp.depth <- inst.Interp.depth - 1;
       raise e);
  inst.Interp.depth <- inst.Interp.depth - 1;
  collapse rt base cf.cf_arity

(* Route a call through the interpreter: host imports and fallback
   functions box their arguments at this boundary.  [n] is the parameter
   count of the callee's declared type. *)
let call_via_interp rt fi n =
  let base = rt.sp - n in
  if base < 0 then Values.trap "stack underflow";
  let args = ref [] in
  for i = n - 1 downto 0 do
    args := value_of_slot rt (base + i) :: !args
  done;
  rt.sp <- base;
  let results = Interp.invoke_func rt.inst rt.inst.Interp.funcs.(fi) !args in
  List.iter (fun v -> push_value rt v) results

(* Call the function at absolute index [fi] ([n] declared parameters):
   compiled body if available, interpreter otherwise. *)
let call_abs rt fi n =
  let prep = rt.prep in
  if fi >= prep.p_nimp then
    match prep.p_funcs.(fi - prep.p_nimp) with
    | Some cf -> invoke_cf rt cf
    | None -> call_via_interp rt fi n
  else call_via_interp rt fi n

(* ------------------------------------------------------------------ *)
(* Fuel segments                                                       *)
(* ------------------------------------------------------------------ *)

(* A segment is a maximal run of instructions whose fuel can be charged
   in one comparison: straight-line code, ending at (and including) the
   first instruction that can consume unbounded inner fuel — a block
   entry or a call into Wasm code.  Branches inside the run refund the
   pre-charge of the instructions they skip, so the fuel counter agrees
   with the interpreter's per-instruction accounting on every path that
   can observe it.  When the remaining budget cannot cover the whole
   run, the slow driver replicates the interpreter's per-instruction
   check exactly, exhausting at the same instruction with the same
   message. *)
let seg_code (ops : op list) : op =
  match ops with
  | [ op ] ->
      fun rt lbase ->
        let inst = rt.inst in
        if inst.Interp.fuel <= 0 then
          raise (Interp.Exhaustion "instruction budget exhausted");
        inst.Interp.fuel <- inst.Interp.fuel - 1;
        op rt lbase
  | _ ->
      let ops = Array.of_list ops in
      let k = Array.length ops in
      fun rt lbase ->
        let inst = rt.inst in
        if inst.Interp.fuel >= k then begin
          inst.Interp.fuel <- inst.Interp.fuel - k;
          let rec fast i =
            if i = k then 0
            else
              let c = (Array.unsafe_get ops i) rt lbase in
              if c = 0 then fast (i + 1)
              else begin
                let refund = k - i - 1 in
                if refund > 0 then inst.Interp.fuel <- inst.Interp.fuel + refund;
                c
              end
          in
          fast 0
        end
        else
          let rec slow i =
            if i = k then 0
            else begin
              if inst.Interp.fuel <= 0 then
                raise (Interp.Exhaustion "instruction budget exhausted");
              inst.Interp.fuel <- inst.Interp.fuel - 1;
              let c = (Array.unsafe_get ops i) rt lbase in
              if c = 0 then slow (i + 1) else c
            end
          in
          slow 0

(* ------------------------------------------------------------------ *)
(* Structured control                                                  *)
(* ------------------------------------------------------------------ *)

let block_arity : Ast.block_type -> int = function None -> 0 | Some _ -> 1

let block_op inner arity : op =
 fun rt lbase ->
  let sp0 = rt.sp in
  let c = inner rt lbase in
  if c = 0 || c = 1 then begin
    collapse rt sp0 arity;
    0
  end
  else if c = -1 then -1
  else c - 1

let loop_op inner arity : op =
 fun rt lbase ->
  let sp0 = rt.sp in
  let rec go () =
    let c = inner rt lbase in
    if c = 0 then begin
      collapse rt sp0 arity;
      0
    end
    else if c = 1 then begin
      (* branch to the loop header restarts the body on a fresh
         block-local stack, like the interpreter's [Br_exn (0, _)] *)
      rt.sp <- sp0;
      go ()
    end
    else if c = -1 then -1
    else c - 1
  in
  go ()

let if_op then_ else_ arity : op =
 fun rt lbase ->
  let cond = pop_as_i32 rt in
  let sp0 = rt.sp in
  let c = if cond <> 0l then then_ rt lbase else else_ rt lbase in
  if c = 0 || c = 1 then begin
    collapse rt sp0 arity;
    0
  end
  else if c = -1 then -1
  else c - 1

(* ------------------------------------------------------------------ *)
(* Operator specialisation                                             *)
(* ------------------------------------------------------------------ *)

let i32_binop : Ast.int_binop -> int32 -> int32 -> int32 = function
  | Ast.Add -> Int32.add
  | Ast.Sub -> Int32.sub
  | Ast.Mul -> Int32.mul
  | Ast.Div_s -> Values.I32x.div_s
  | Ast.Div_u -> Values.I32x.div_u
  | Ast.Rem_s -> Values.I32x.rem_s
  | Ast.Rem_u -> Values.I32x.rem_u
  | Ast.And -> Int32.logand
  | Ast.Or -> Int32.logor
  | Ast.Xor -> Int32.logxor
  | Ast.Shl -> Values.I32x.shl
  | Ast.Shr_s -> Values.I32x.shr_s
  | Ast.Shr_u -> Values.I32x.shr_u
  | Ast.Rotl -> Values.I32x.rotl
  | Ast.Rotr -> Values.I32x.rotr

let i64_binop : Ast.int_binop -> int64 -> int64 -> int64 = function
  | Ast.Add -> Int64.add
  | Ast.Sub -> Int64.sub
  | Ast.Mul -> Int64.mul
  | Ast.Div_s -> Values.I64x.div_s
  | Ast.Div_u -> Values.I64x.div_u
  | Ast.Rem_s -> Values.I64x.rem_s
  | Ast.Rem_u -> Values.I64x.rem_u
  | Ast.And -> Int64.logand
  | Ast.Or -> Int64.logor
  | Ast.Xor -> Int64.logxor
  | Ast.Shl -> Values.I64x.shl
  | Ast.Shr_s -> Values.I64x.shr_s
  | Ast.Shr_u -> Values.I64x.shr_u
  | Ast.Rotl -> Values.I64x.rotl
  | Ast.Rotr -> Values.I64x.rotr

let i32_relop : Ast.int_relop -> int32 -> int32 -> bool = function
  | Ast.Eq -> Int32.equal
  | Ast.Ne -> fun x y -> not (Int32.equal x y)
  | Ast.Lt_s -> fun x y -> Int32.compare x y < 0
  | Ast.Lt_u -> Values.I32x.lt_u
  | Ast.Gt_s -> fun x y -> Int32.compare x y > 0
  | Ast.Gt_u -> Values.I32x.gt_u
  | Ast.Le_s -> fun x y -> Int32.compare x y <= 0
  | Ast.Le_u -> Values.I32x.le_u
  | Ast.Ge_s -> fun x y -> Int32.compare x y >= 0
  | Ast.Ge_u -> Values.I32x.ge_u

let i64_relop : Ast.int_relop -> int64 -> int64 -> bool = function
  | Ast.Eq -> Int64.equal
  | Ast.Ne -> fun x y -> not (Int64.equal x y)
  | Ast.Lt_s -> fun x y -> Int64.compare x y < 0
  | Ast.Lt_u -> Values.I64x.lt_u
  | Ast.Gt_s -> fun x y -> Int64.compare x y > 0
  | Ast.Gt_u -> Values.I64x.gt_u
  | Ast.Le_s -> fun x y -> Int64.compare x y <= 0
  | Ast.Le_u -> Values.I64x.le_u
  | Ast.Ge_s -> fun x y -> Int64.compare x y >= 0
  | Ast.Ge_u -> Values.I64x.ge_u

let i32_unop : Ast.int_unop -> int32 -> int32 = function
  | Ast.Clz -> Values.I32x.clz
  | Ast.Ctz -> Values.I32x.ctz
  | Ast.Popcnt -> Values.I32x.popcnt

let i64_unop : Ast.int_unop -> int64 -> int64 = function
  | Ast.Clz -> Values.I64x.clz
  | Ast.Ctz -> Values.I64x.ctz
  | Ast.Popcnt -> Values.I64x.popcnt

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)
(* ------------------------------------------------------------------ *)

type cctx = {
  c_m : Ast.module_;
  c_nimp : int;
  c_imports : (string * string * Types.func_type) array;
  c_fast : string -> string -> fast_host option;
  c_exclude : Ast.instr -> bool;
}

(* Instructions that end a fuel segment: anything whose inner execution
   consumes an unbounded amount of fuel itself.  Host calls cost exactly
   the call instruction's own unit, so they stay inside segments. *)
let ends_segment cctx : Ast.instr -> bool = function
  | Ast.Block _ | Ast.Loop _ | Ast.If _ | Ast.Call_indirect _ -> true
  | Ast.Call fi -> fi >= cctx.c_nimp
  | _ -> false

let hook_sig (ft : Types.func_type) ty =
  (match ft.Types.params with [ t ] -> t = ty | _ -> false)
  && ft.Types.results = []

let rec compile_instr cctx (i : Ast.instr) : op =
  if cctx.c_exclude i then raise Unsupported;
  match i with
  | Ast.Unreachable -> fun _ _ -> Values.trap "unreachable executed"
  | Ast.Nop -> fun _ _ -> 0
  | Ast.Block (bt, body) -> block_op (compile_body cctx body) (block_arity bt)
  | Ast.Loop (bt, body) -> loop_op (compile_body cctx body) (block_arity bt)
  | Ast.If (bt, t, e) ->
      if_op (compile_body cctx t) (compile_body cctx e) (block_arity bt)
  | Ast.Br n -> fun _ _ -> n + 1
  | Ast.Br_if n -> fun rt _ -> if pop_as_i32 rt <> 0l then n + 1 else 0
  | Ast.Br_table (targets, default) ->
      let tarr = Array.of_list targets in
      fun rt _ ->
        let i = Int32.to_int (pop_as_i32 rt) in
        let t = if i >= 0 && i < Array.length tarr then tarr.(i) else default in
        t + 1
  | Ast.Return -> fun _ _ -> -1
  | Ast.Call fi ->
      if fi < cctx.c_nimp then begin
        let im, inm, ft = cctx.c_imports.(fi) in
        match cctx.c_fast im inm with
        | Some (Fast_i32 f) when hook_sig ft Types.I32 ->
            fun rt _ ->
              f (pop_as_i32 rt);
              0
        | Some (Fast_i64 f) when hook_sig ft Types.I64 ->
            fun rt _ ->
              f (pop_as_i64 rt);
              0
        | Some (Fast_f32 f) when hook_sig ft Types.F32 ->
            fun rt _ ->
              f (pop_as_f32 rt);
              0
        | Some (Fast_f64 f) when hook_sig ft Types.F64 ->
            fun rt _ ->
              f (pop_as_f64 rt);
              0
        | _ ->
            let n = List.length ft.Types.params in
            fun rt _ ->
              call_via_interp rt fi n;
              0
      end
      else
        let ft = Ast.func_type_at cctx.c_m fi in
        let n = List.length ft.Types.params in
        fun rt _ ->
          call_abs rt fi n;
          0
  | Ast.Call_indirect ti ->
      let expected = cctx.c_m.Ast.types.(ti) in
      let n = List.length expected.Types.params in
      fun rt _ ->
        let i = Int32.to_int (pop_as_i32 rt) in
        let inst = rt.inst in
        if i < 0 || i >= Array.length inst.Interp.table then
          Values.trap "undefined element (table index %d)" i;
        (match inst.Interp.table.(i) with
         | None -> Values.trap "uninitialized element %d" i
         | Some callee ->
             if not (Types.equal_func_type expected (Interp.func_type_of callee))
             then Values.trap "indirect call type mismatch";
             call_abs rt rt.tsrc.(i) n);
        0
  | Ast.Drop ->
      fun rt _ ->
        ignore (pop_slot rt);
        0
  | Ast.Select ->
      fun rt _ ->
        let cond = pop_as_i32 rt in
        let jb = pop_slot rt in
        let ia = pop_slot rt in
        if cond <> 0l then rt.sp <- ia + 1
        else begin
          Array.unsafe_set rt.stk_bits ia (Array.unsafe_get rt.stk_bits jb);
          Bytes.unsafe_set rt.stk_tags ia (Bytes.unsafe_get rt.stk_tags jb);
          rt.sp <- ia + 1
        end;
        0
  | Ast.Local_get n ->
      fun rt lbase ->
        let i = lbase + n in
        let b = rt.stk_bits.(i) and t = Bytes.get rt.stk_tags i in
        push_raw rt b t;
        0
  | Ast.Local_set n ->
      fun rt lbase ->
        let i = pop_slot rt in
        let j = lbase + n in
        rt.stk_bits.(j) <- Array.unsafe_get rt.stk_bits i;
        Bytes.set rt.stk_tags j (Bytes.unsafe_get rt.stk_tags i);
        0
  | Ast.Local_tee n ->
      fun rt lbase ->
        let i = rt.sp - 1 in
        if i < 0 then Values.trap "stack underflow";
        let j = lbase + n in
        rt.stk_bits.(j) <- Array.unsafe_get rt.stk_bits i;
        Bytes.set rt.stk_tags j (Bytes.unsafe_get rt.stk_tags i);
        0
  | Ast.Global_get n ->
      fun rt _ ->
        push_value rt rt.inst.Interp.globals.(n);
        0
  | Ast.Global_set n ->
      fun rt _ ->
        rt.inst.Interp.globals.(n) <- pop_value rt;
        0
  | Ast.Load lop -> (
      let off = Int32.to_int lop.Ast.l_offset in
      match (lop.Ast.l_ty, lop.Ast.l_pack) with
      | Types.I32, None ->
          fun rt _ ->
            let ea = Int32.to_int (pop_as_i32 rt) + off in
            let raw = Memory.load_bytes_le (Interp.get_memory rt.inst) ea 4 in
            push_raw rt (f_of_i32 (Int64.to_int32 raw)) tag_i32;
            0
      | Types.I64, None ->
          fun rt _ ->
            let ea = Int32.to_int (pop_as_i32 rt) + off in
            let raw = Memory.load_bytes_le (Interp.get_memory rt.inst) ea 8 in
            push_raw rt (f_of_i64 raw) tag_i64;
            0
      | Types.F32, None ->
          fun rt _ ->
            let ea = Int32.to_int (pop_as_i32 rt) + off in
            let raw = Memory.load_bytes_le (Interp.get_memory rt.inst) ea 4 in
            push_raw rt (Int32.float_of_bits (Int64.to_int32 raw)) tag_f32;
            0
      | Types.F64, None ->
          fun rt _ ->
            let ea = Int32.to_int (pop_as_i32 rt) + off in
            let raw = Memory.load_bytes_le (Interp.get_memory rt.inst) ea 8 in
            push_raw rt (Int64.float_of_bits raw) tag_f64;
            0
      | (Types.I32 | Types.I64), Some (sz, ext) ->
          let bits =
            match sz with Ast.Pack8 -> 8 | Ast.Pack16 -> 16 | Ast.Pack32 -> 32
          in
          let signed = ext = Ast.SX in
          let wide = lop.Ast.l_ty = Types.I64 in
          fun rt _ ->
            let ea = Int32.to_int (pop_as_i32 rt) + off in
            let raw =
              Memory.load_bytes_le (Interp.get_memory rt.inst) ea (bits / 8)
            in
            let v = Memory.extend_to_i64 ~signed ~bits raw in
            if wide then push_raw rt (f_of_i64 v) tag_i64
            else push_raw rt (f_of_i32 (Int64.to_int32 v)) tag_i32;
            0
      | (Types.F32 | Types.F64), Some _ ->
          (* interpreter order: bounds-check the raw load, then trap *)
          fun rt _ ->
            let ea = Int32.to_int (pop_as_i32 rt) + off in
            push_value rt (Memory.load_value (Interp.get_memory rt.inst) lop ea);
            0)
  | Ast.Store sop ->
      let off = Int32.to_int sop.Ast.s_offset in
      let width =
        match sop.Ast.s_pack with
        | None -> ( match sop.Ast.s_ty with
                    | Types.I32 | Types.F32 -> 4
                    | Types.I64 | Types.F64 -> 8)
        | Some Ast.Pack8 -> 1
        | Some Ast.Pack16 -> 2
        | Some Ast.Pack32 -> 4
      in
      fun rt _ ->
        let i = pop_slot rt in
        let raw = raw_bits_of_slot rt i in
        let ea = Int32.to_int (pop_as_i32 rt) + off in
        Memory.store_bytes_le (Interp.get_memory rt.inst) ea width raw;
        0
  | Ast.Memory_size ->
      fun rt _ ->
        push_raw rt
          (f_of_i32 (Int32.of_int (Memory.size_pages (Interp.get_memory rt.inst))))
          tag_i32;
        0
  | Ast.Memory_grow ->
      fun rt _ ->
        let delta = Int32.to_int (pop_as_i32 rt) in
        push_raw rt
          (f_of_i32 (Memory.grow (Interp.get_memory rt.inst) delta))
          tag_i32;
        0
  | Ast.Const v ->
      (* payload and tag precomputed: pushing is two plain stores *)
      let b =
        match v with
        | Values.I32 x -> f_of_i32 x
        | Values.I64 x -> f_of_i64 x
        | Values.F32 x | Values.F64 x -> x
      in
      let t = tag_of_type (Values.type_of v) in
      fun rt _ ->
        push_raw rt b t;
        0
  | Ast.Eqz Types.I32 ->
      fun rt _ ->
        let i = pop_slot rt in
        if Bytes.unsafe_get rt.stk_tags i = '\000' then
          push_raw rt
            (if i32_of_f (Array.unsafe_get rt.stk_bits i) = 0l then f_true
             else 0.0)
            tag_i32
        else Values.trap "eqz type mismatch";
        0
  | Ast.Eqz Types.I64 ->
      fun rt _ ->
        let i = pop_slot rt in
        if Bytes.unsafe_get rt.stk_tags i = '\001' then
          push_raw rt
            (if i64_of_f (Array.unsafe_get rt.stk_bits i) = 0L then f_true
             else 0.0)
            tag_i32
        else Values.trap "eqz type mismatch";
        0
  | Ast.Eqz _ ->
      fun rt _ ->
        ignore (pop_slot rt);
        Values.trap "eqz type mismatch"
  | Ast.Int_compare (Types.I32, rel) ->
      let f = i32_relop rel in
      fun rt _ ->
        let jb = pop_slot rt in
        let ia = pop_slot rt in
        let tags = rt.stk_tags in
        if
          Bytes.unsafe_get tags ia = '\000'
          && Bytes.unsafe_get tags jb = '\000'
        then begin
          let bits = rt.stk_bits in
          let x = i32_of_f (Array.unsafe_get bits ia)
          and y = i32_of_f (Array.unsafe_get bits jb) in
          push_raw rt (if f x y then f_true else 0.0) tag_i32
        end
        else Values.trap "int compare type mismatch";
        0
  | Ast.Int_compare (Types.I64, rel) ->
      let f = i64_relop rel in
      fun rt _ ->
        let jb = pop_slot rt in
        let ia = pop_slot rt in
        let tags = rt.stk_tags in
        if
          Bytes.unsafe_get tags ia = '\001'
          && Bytes.unsafe_get tags jb = '\001'
        then begin
          let bits = rt.stk_bits in
          let x = i64_of_f (Array.unsafe_get bits ia)
          and y = i64_of_f (Array.unsafe_get bits jb) in
          push_raw rt (if f x y then f_true else 0.0) tag_i32
        end
        else Values.trap "int compare type mismatch";
        0
  | Ast.Int_compare (ty, rel) ->
      fun rt _ ->
        let b = pop_value rt in
        let a = pop_value rt in
        push_value rt (Interp.eval_int_compare ty rel a b);
        0
  | Ast.Int_binary (Types.I32, bop) ->
      let f = i32_binop bop in
      fun rt _ ->
        let jb = pop_slot rt in
        let ia = pop_slot rt in
        let tags = rt.stk_tags in
        if
          Bytes.unsafe_get tags ia = '\000'
          && Bytes.unsafe_get tags jb = '\000'
        then begin
          let bits = rt.stk_bits in
          let x = i32_of_f (Array.unsafe_get bits ia)
          and y = i32_of_f (Array.unsafe_get bits jb) in
          push_raw rt (f_of_i32 (f x y)) tag_i32
        end
        else Values.trap "int binary type mismatch";
        0
  | Ast.Int_binary (Types.I64, bop) ->
      let f = i64_binop bop in
      fun rt _ ->
        let jb = pop_slot rt in
        let ia = pop_slot rt in
        let tags = rt.stk_tags in
        if
          Bytes.unsafe_get tags ia = '\001'
          && Bytes.unsafe_get tags jb = '\001'
        then begin
          let bits = rt.stk_bits in
          let x = i64_of_f (Array.unsafe_get bits ia)
          and y = i64_of_f (Array.unsafe_get bits jb) in
          push_raw rt (f_of_i64 (f x y)) tag_i64
        end
        else Values.trap "int binary type mismatch";
        0
  | Ast.Int_binary (ty, bop) ->
      fun rt _ ->
        let b = pop_value rt in
        let a = pop_value rt in
        push_value rt (Interp.eval_int_binary ty bop a b);
        0
  | Ast.Int_unary (Types.I32, uop) ->
      let f = i32_unop uop in
      fun rt _ ->
        let i = pop_slot rt in
        if Bytes.unsafe_get rt.stk_tags i = '\000' then
          push_raw rt (f_of_i32 (f (i32_of_f (Array.unsafe_get rt.stk_bits i))))
            tag_i32
        else Values.trap "int unary type mismatch";
        0
  | Ast.Int_unary (Types.I64, uop) ->
      let f = i64_unop uop in
      fun rt _ ->
        let i = pop_slot rt in
        if Bytes.unsafe_get rt.stk_tags i = '\001' then
          push_raw rt (f_of_i64 (f (i64_of_f (Array.unsafe_get rt.stk_bits i))))
            tag_i64
        else Values.trap "int unary type mismatch";
        0
  | Ast.Int_unary (ty, uop) ->
      fun rt _ ->
        push_value rt (Interp.eval_int_unary ty uop (pop_value rt));
        0
  | Ast.Float_compare (ty, rel) ->
      fun rt _ ->
        let b = pop_value rt in
        let a = pop_value rt in
        push_value rt (Interp.eval_float_compare ty rel a b);
        0
  | Ast.Float_unary (ty, uop) ->
      fun rt _ ->
        push_value rt (Interp.eval_float_unary ty uop (pop_value rt));
        0
  | Ast.Float_binary (ty, bop) ->
      fun rt _ ->
        let b = pop_value rt in
        let a = pop_value rt in
        push_value rt (Interp.eval_float_binary ty bop a b);
        0
  | Ast.Convert Ast.I32_wrap_i64 ->
      fun rt _ ->
        let i = pop_slot rt in
        if Bytes.unsafe_get rt.stk_tags i = '\001' then
          push_raw rt
            (f_of_i32 (Int64.to_int32 (i64_of_f (Array.unsafe_get rt.stk_bits i))))
            tag_i32
        else
          push_value rt
            (Interp.eval_convert Ast.I32_wrap_i64 (value_of_slot rt i));
        0
  | Ast.Convert Ast.I64_extend_i32_s ->
      fun rt _ ->
        let i = pop_slot rt in
        if Bytes.unsafe_get rt.stk_tags i = '\000' then
          (* i32 payloads are stored sign-extended: only the tag changes *)
          push_raw rt (Array.unsafe_get rt.stk_bits i) tag_i64
        else
          push_value rt
            (Interp.eval_convert Ast.I64_extend_i32_s (value_of_slot rt i));
        0
  | Ast.Convert Ast.I64_extend_i32_u ->
      fun rt _ ->
        let i = pop_slot rt in
        if Bytes.unsafe_get rt.stk_tags i = '\000' then
          push_raw rt
            (f_of_i64
               (Int64.logand
                  (i64_of_f (Array.unsafe_get rt.stk_bits i))
                  0xFFFF_FFFFL))
            tag_i64
        else
          push_value rt
            (Interp.eval_convert Ast.I64_extend_i32_u (value_of_slot rt i));
        0
  | Ast.Convert Ast.I32_reinterpret_f32 ->
      fun rt _ ->
        let i = pop_slot rt in
        if Bytes.unsafe_get rt.stk_tags i = '\002' then
          push_raw rt
            (f_of_i32 (Int32.bits_of_float (Array.unsafe_get rt.stk_bits i)))
            tag_i32
        else
          push_value rt
            (Interp.eval_convert Ast.I32_reinterpret_f32 (value_of_slot rt i));
        0
  | Ast.Convert Ast.I64_reinterpret_f64 ->
      fun rt _ ->
        let i = pop_slot rt in
        if Bytes.unsafe_get rt.stk_tags i = '\003' then
          (* the payload already holds the double's bits: retag only *)
          push_raw rt (Array.unsafe_get rt.stk_bits i) tag_i64
        else
          push_value rt
            (Interp.eval_convert Ast.I64_reinterpret_f64 (value_of_slot rt i));
        0
  | Ast.Convert Ast.F32_reinterpret_i32 ->
      fun rt _ ->
        let i = pop_slot rt in
        if Bytes.unsafe_get rt.stk_tags i = '\000' then
          push_raw rt
            (Int32.float_of_bits (i32_of_f (Array.unsafe_get rt.stk_bits i)))
            tag_f32
        else
          push_value rt
            (Interp.eval_convert Ast.F32_reinterpret_i32 (value_of_slot rt i));
        0
  | Ast.Convert Ast.F64_reinterpret_i64 ->
      fun rt _ ->
        let i = pop_slot rt in
        if Bytes.unsafe_get rt.stk_tags i = '\001' then
          push_raw rt (Array.unsafe_get rt.stk_bits i) tag_f64
        else
          push_value rt
            (Interp.eval_convert Ast.F64_reinterpret_i64 (value_of_slot rt i));
        0
  | Ast.Convert cop ->
      fun rt _ ->
        push_value rt (Interp.eval_convert cop (pop_value rt));
        0

and compile_body cctx (body : Ast.instr list) : op =
  let segs = ref [] in
  let cur = ref [] in
  let flush () =
    match !cur with
    | [] -> ()
    | ops ->
        segs := seg_code (List.rev ops) :: !segs;
        cur := []
  in
  List.iter
    (fun i ->
      cur := compile_instr cctx i :: !cur;
      if ends_segment cctx i then flush ())
    body;
  flush ();
  match List.rev !segs with
  | [] -> fun _ _ -> 0
  | [ s ] -> s
  | l ->
      let arr = Array.of_list l in
      let n = Array.length arr in
      fun rt lbase ->
        let rec go i =
          if i = n then 0
          else
            let c = (Array.unsafe_get arr i) rt lbase in
            if c = 0 then go (i + 1) else c
        in
        go 0

let compile_func cctx (f : Ast.func) : cfunc option =
  let ft = cctx.c_m.Ast.types.(f.Ast.ftype) in
  match compile_body cctx f.Ast.body with
  | code ->
      let locals = Array.of_list f.Ast.locals in
      let nparams = List.length ft.Types.params in
      Some
        {
          cf_code = code;
          cf_ltags =
            String.init (Array.length locals) (fun i -> tag_of_type locals.(i));
          cf_nparams = nparams;
          cf_nlocals = nparams + Array.length locals;
          cf_arity = List.length ft.Types.results;
        }
  | exception Unsupported -> None

let prepare ?(fast_host = fun _ _ -> None) ?(exclude = fun _ -> false)
    (m : Ast.module_) : prepared =
  let module T = Wasai_telemetry.Telemetry in
  let t_compile = T.start () in
  let nimp = Ast.num_func_imports m in
  let imports =
    Array.of_list
      (List.map
         (fun (i : Ast.import) ->
           match i.Ast.idesc with
           | Ast.Func_import ti ->
               (i.Ast.imp_module, i.Ast.imp_name, m.Ast.types.(ti))
           | _ -> assert false)
         (Ast.func_imports m))
  in
  let cctx =
    {
      c_m = m;
      c_nimp = nimp;
      c_imports = imports;
      c_fast = fast_host;
      c_exclude = exclude;
    }
  in
  let funcs = Array.map (compile_func cctx) m.Ast.funcs in
  let compiled =
    Array.fold_left (fun n -> function Some _ -> n + 1 | None -> n) 0 funcs
  in
  T.stop T.Compile t_compile;
  {
    p_module = m;
    p_nimp = nimp;
    p_funcs = funcs;
    p_bits = Array.make 256 0.0;
    p_tags = Bytes.make 256 '\000';
    p_busy = false;
    p_compiled = compiled;
    p_fallback = Array.length funcs - compiled;
  }

let module_of prep = prep.p_module
let function_counts prep = (prep.p_compiled, prep.p_fallback)

(* ------------------------------------------------------------------ *)
(* Sessions                                                            *)
(* ------------------------------------------------------------------ *)

type session = {
  s_prep : prepared;
  s_inst : Interp.instance;
  s_tsrc : int array;
}

let instance s = s.s_inst

let invoke (s : session) (fi : int) (args : Values.value list) :
    Values.value list =
  let prep = s.s_prep in
  let cf = if fi < prep.p_nimp then None else prep.p_funcs.(fi - prep.p_nimp) in
  match cf with
  | None ->
      (* host import or fallback function: pure interpreter path *)
      Interp.invoke_func s.s_inst s.s_inst.Interp.funcs.(fi) args
  | Some cf ->
      let shared = not prep.p_busy in
      let stk_bits, stk_tags =
        if shared then begin
          prep.p_busy <- true;
          (prep.p_bits, prep.p_tags)
        end
        else (Array.make 256 0.0, Bytes.make 256 '\000')
      in
      let rt =
        { inst = s.s_inst; stk_bits; stk_tags; sp = 0; tsrc = s.s_tsrc; prep }
      in
      let release () =
        if shared then begin
          prep.p_bits <- rt.stk_bits;
          prep.p_tags <- rt.stk_tags;
          prep.p_busy <- false
        end
      in
      (match
         List.iter (fun v -> push_value rt v) args;
         invoke_cf rt cf
       with
      | () ->
          let rec collect i acc =
            if i < 0 then acc else collect (i - 1) (value_of_slot rt i :: acc)
          in
          let results = collect (rt.sp - 1) [] in
          release ();
          results
      | exception e ->
          release ();
          raise e)

let invoke_export (s : session) (name : string) (args : Values.value list) :
    Values.value list =
  match Ast.exported_func s.s_prep.p_module name with
  | None -> Values.trap "no exported function named %s" name
  | Some idx -> invoke s idx args

(* Allocation phase only: imports, memory, globals, table, segments —
   the start function is the caller's to run ([run_start]), which is what
   lets the pool snapshot the pre-start memory image. *)
let instantiate_pre ?fuel ?max_depth (prep : prepared)
    (resolver : Interp.resolver) : session =
  let inst = Interp.alloc_instance ?fuel ?max_depth resolver prep.p_module in
  (* Map table slots back to absolute function indices so indirect calls
     can dispatch into compiled bodies; [alloc_instance] already
     bounds-checked the segments. *)
  let tsrc = Array.make (Array.length inst.Interp.table) (-1) in
  List.iter
    (fun (e : Ast.elem_segment) ->
      let base =
        Int32.to_int
          (Values.as_i32
             (Interp.eval_const_expr inst.Interp.globals e.Ast.e_offset))
      in
      List.iteri (fun i fi -> tsrc.(base + i) <- fi) e.Ast.e_init)
    prep.p_module.Ast.elems;
  { s_prep = prep; s_inst = inst; s_tsrc = tsrc }

let run_start (s : session) =
  match s.s_prep.p_module.Ast.start with
  | Some fi -> ignore (invoke s fi [])
  | None -> ()

let instantiate ?fuel ?max_depth (prep : prepared) (resolver : Interp.resolver)
    : session =
  let s = instantiate_pre ?fuel ?max_depth prep resolver in
  run_start s;
  s

(* ------------------------------------------------------------------ *)
(* Instance pooling                                                    *)
(* ------------------------------------------------------------------ *)

(* A fresh instance per action is pure allocator churn when the same
   target runs tens of thousands of payloads: the dominant cost is
   [Bytes.make] for linear memory, not execution.  The pool keeps one
   live session per prepared module and returns it to the exact
   post-allocation state before every reuse: imports rebound against the
   caller's resolver (host functions close over per-action state),
   globals re-evaluated, linear memory restored from the pre-start image
   (dirty-watermark blit), fuel and call depth reset, then the start
   function re-run — precisely the observable sequence of a fresh
   [instantiate].  Tables are static in the MVP (no [table.set]/grow),
   so only slots that hold imported host functions need refreshing after
   a rebind. *)

type pool = {
  pl_prep : prepared;
  pl_poolable : bool;
      (** modules importing their linear memory share state with the
          embedder and cannot be reset locally; they always get a fresh
          instance *)
  mutable pl_sess : session option;
  mutable pl_mem : string option;  (** pre-start linear-memory image *)
  mutable pl_depth : int;  (** [max_depth] the pooled instance was built with *)
  mutable pl_busy : bool;
      (** re-entrant acquisition (nested inline actions) falls back to a
          fresh instance, matching the interpreter's
          fresh-instance-per-nested-run behaviour *)
}

let pool (prep : prepared) : pool =
  let poolable =
    not
      (List.exists
         (fun (i : Ast.import) ->
           match i.Ast.idesc with Ast.Memory_import _ -> true | _ -> false)
         prep.p_module.Ast.imports)
  in
  {
    pl_prep = prep;
    pl_poolable = poolable;
    pl_sess = None;
    pl_mem = None;
    pl_depth = 0;
    pl_busy = false;
  }

(* Must match the default in [Interp.alloc_instance]. *)
let default_max_depth = 256

let reset_session (pl : pool) (s : session) (resolver : Interp.resolver)
    (fuel : int option) : unit =
  let inst = s.s_inst in
  (* Raises [Link_error] before mutating anything, like linking does. *)
  Interp.rebind_imports inst resolver;
  (* Table slots initialised from imported functions still point at the
     previous action's host closures; refresh them from the rebound
     index space. *)
  Array.iteri
    (fun slot fi ->
      if fi >= 0 && fi < s.s_prep.p_nimp then
        inst.Interp.table.(slot) <- Some inst.Interp.funcs.(fi))
    s.s_tsrc;
  Interp.reset_globals inst;
  (match (inst.Interp.memory, pl.pl_mem) with
  | Some mem, Some img -> Memory.restore mem img
  | _ -> ());
  Interp.set_fuel inst (Option.value fuel ~default:max_int);
  inst.Interp.depth <- 0

let with_session (pl : pool) ?fuel ?max_depth (resolver : Interp.resolver)
    (f : session -> 'a) : 'a =
  let depth = Option.value max_depth ~default:default_max_depth in
  let reusable =
    pl.pl_poolable && (not pl.pl_busy)
    && match pl.pl_sess with None -> true | Some _ -> depth = pl.pl_depth
  in
  if not reusable then f (instantiate ?fuel ?max_depth pl.pl_prep resolver)
  else begin
    pl.pl_busy <- true;
    Fun.protect
      ~finally:(fun () -> pl.pl_busy <- false)
      (fun () ->
        let s =
          match pl.pl_sess with
          | Some s ->
              reset_session pl s resolver fuel;
              s
          | None ->
              let s = instantiate_pre ?fuel ?max_depth pl.pl_prep resolver in
              pl.pl_mem <- Option.map Memory.snapshot s.s_inst.Interp.memory;
              pl.pl_sess <- Some s;
              pl.pl_depth <- depth;
              s
        in
        run_start s;
        f s)
  end
