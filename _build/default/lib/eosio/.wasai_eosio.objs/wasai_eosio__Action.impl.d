lib/eosio/action.ml: Abi Buffer Int64 List Name Printf String
