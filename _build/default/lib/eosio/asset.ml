(** EOSIO assets: a 64-bit signed amount plus a symbol.

    The symbol packs the precision in its low byte and up to seven
    uppercase letters above it, exactly as in Nodeos; "100.0000 EOS" has
    amount 1000000 and symbol [precision=4, "EOS"]. *)

module Symbol = struct
  type t = int64

  let make ~precision (code : string) : t =
    if String.length code > 7 then invalid_arg "Symbol.make: code too long";
    String.iter
      (fun c -> if c < 'A' || c > 'Z' then invalid_arg "Symbol.make: bad char")
      code;
    let v = ref (Int64.of_int (precision land 0xff)) in
    String.iteri
      (fun i c ->
        v := Int64.logor !v (Int64.shift_left (Int64.of_int (Char.code c)) (8 * (i + 1))))
      code;
    !v

  let precision (t : t) = Int64.to_int (Int64.logand t 0xffL)

  let code (t : t) =
    let buf = Buffer.create 7 in
    let rec go i =
      if i <= 7 then begin
        let c = Int64.to_int (Int64.logand (Int64.shift_right_logical t (8 * i)) 0xffL) in
        if c <> 0 then begin
          Buffer.add_char buf (Char.chr c);
          go (i + 1)
        end
      end
    in
    go 1;
    Buffer.contents buf

  let to_string t = Printf.sprintf "%d,%s" (precision t) (code t)
  let equal = Int64.equal

  let eos : t = make ~precision:4 "EOS"
end

type t = { amount : int64; symbol : Symbol.t }

let make amount symbol = { amount; symbol }

(** The canonical "X.XXXX EOS" asset with 4 decimal places. *)
let eos_of_units (amount : int64) = { amount; symbol = Symbol.eos }

(** Parse "10.0000 EOS" style literals. *)
let of_string (s : string) : t =
  match String.index_opt s ' ' with
  | None -> invalid_arg "Asset.of_string: missing symbol"
  | Some sp ->
      let num = String.sub s 0 sp in
      let code = String.sub s (sp + 1) (String.length s - sp - 1) in
      let int_part, frac_part =
        match String.index_opt num '.' with
        | None -> (num, "")
        | Some d ->
            (String.sub num 0 d, String.sub num (d + 1) (String.length num - d - 1))
      in
      let precision = String.length frac_part in
      let digits = int_part ^ frac_part in
      let amount = Int64.of_string digits in
      { amount; symbol = Symbol.make ~precision code }

let to_string (a : t) : string =
  let p = Symbol.precision a.symbol in
  let sign = if Int64.compare a.amount 0L < 0 then "-" else "" in
  let abs = Int64.abs a.amount in
  let s = Int64.to_string abs in
  let s = if String.length s <= p then String.make (p + 1 - String.length s) '0' ^ s else s in
  let cut = String.length s - p in
  let int_part = String.sub s 0 cut in
  let frac = String.sub s cut p in
  if p = 0 then Printf.sprintf "%s%s %s" sign int_part (Symbol.code a.symbol)
  else Printf.sprintf "%s%s.%s %s" sign int_part frac (Symbol.code a.symbol)

let add a b =
  if not (Symbol.equal a.symbol b.symbol) then
    invalid_arg "Asset.add: symbol mismatch";
  { a with amount = Int64.add a.amount b.amount }

let sub a b =
  if not (Symbol.equal a.symbol b.symbol) then
    invalid_arg "Asset.sub: symbol mismatch";
  { a with amount = Int64.sub a.amount b.amount }

let is_valid a = Int64.compare a.amount 0L >= 0
let equal a b = a.amount = b.amount && Symbol.equal a.symbol b.symbol
let compare_amount a b = Int64.compare a.amount b.amount
let pp fmt a = Format.pp_print_string fmt (to_string a)
