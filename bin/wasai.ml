(** The WASAI command-line interface.

    Sub-commands:
    - [analyze]    fuzz a contract binary and print a vulnerability report
    - [gen]        generate a benchmark contract (and its ABI) to disk
    - [dump]       print a contract binary in WAT-like text
    - [instrument] rewrite a binary with the trace hooks
    - [baseline]   run the EOSAFE static baseline on a binary
    - [campaign]   fleet campaigns, noun-verb style:
                   [campaign run DIR] fuzzes a directory (or its
                   [--shard i/N] slice) over N domains with a crash-safe
                   journal, [--resume], an optional persistent seed
                   [--corpus] and a [--dry-run] plan printer;
                   [campaign merge J1 J2 ...] validates and merges shard
                   journals into the fleet report; [campaign report]
                   rebuilds a report from a journal without fuzzing.
                   Bare [campaign DIR] is a deprecated alias for
                   [campaign run DIR]
    - [corpus]     seed-corpus maintenance: [corpus stats FILE] summarises
                   coverage, [corpus minimize FILE] rewrites the file to a
                   greedy set-cover subset, [corpus import DST SRC...]
                   merges corpora with signature dedupe
    - [serve]      the continuous fuzzing daemon: per-tenant journals and
                   corpora under [--root], bounded per-tenant queues with
                   explicit backpressure, streamed verdicts over a
                   Unix-domain [--socket], crash-safe [--resume]
    - [submit]     client for [serve]: send a contract or directory under
                   a [--tenant] and stream verdicts as they complete

    ABI files use the textual format of {!Wasai_eosio.Abi.of_text}:
    one action per line, e.g. [transfer(from:name,to:name,quantity:asset,memo:string)]. *)

open Cmdliner
module Wasm = Wasai_wasm
module Core = Wasai_core
module BG = Wasai_benchgen
module Campaign = Wasai_campaign
module Corpus = Wasai_corpus.Corpus
module Serve = Wasai_serve
open Wasai_eosio

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path content =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc content)

let load_contract bin_path abi_path =
  let m =
    if Filename.check_suffix bin_path ".wat" then
      Wasm.Text.parse (read_file bin_path)
    else Wasm.Decode.decode (read_file bin_path)
  in
  let abi =
    match abi_path with
    | Some p -> Abi.of_text (read_file p)
    | None -> Abi.default_profitable
  in
  (m, abi)

(* ---- analyze -------------------------------------------------------- *)

let analyze_cmd bin_path abi_path rounds backend account verbose =
  let m, abi = load_contract bin_path abi_path in
  let target =
    {
      Core.Engine.tgt_account = Name.of_string account;
      tgt_module = m;
      tgt_abi = abi;
    }
  in
  let t0 = Unix.gettimeofday () in
  let o =
    Core.Engine.fuzz
      ~cfg:(Core.Engine.make_config ~rounds:(rounds) ~backend ())
      target
  in
  let report =
    Core.Report.make
      ~elapsed:(Unix.gettimeofday () -. t0)
      ~abi:target.Core.Engine.tgt_abi ~target:bin_path o
  in
  print_string (Core.Report.to_text ~verbose report);
  if Core.Report.vulnerable report then exit 1

(* ---- gen ------------------------------------------------------------ *)

let gen_cmd out_path vulns seed obfuscate =
  let rng = Wasai_support.Rand.create (Int64.of_int seed) in
  let account = Name.of_string "victim" in
  let base = BG.Contracts.default_spec account in
  let spec =
    List.fold_left
      (fun spec v ->
        match v with
        | "fake-eos" -> { spec with BG.Contracts.sp_fake_eos_guard = false }
        | "fake-notif" -> { spec with BG.Contracts.sp_fake_notif_guard = false }
        | "miss-auth" -> { spec with BG.Contracts.sp_auth_check = false }
        | "blockinfo" ->
            { spec with BG.Contracts.sp_blockinfo = true; sp_payout_inline = true }
        | "rollback" -> { spec with BG.Contracts.sp_payout_inline = true }
        | "checks" ->
            {
              spec with
              BG.Contracts.sp_checks =
                BG.Verification.random_checks rng ~depth:3;
            }
        | other -> failwith ("unknown vulnerability flag: " ^ other))
      base vulns
  in
  let m, abi = BG.Contracts.build spec in
  let m = if obfuscate then BG.Obfuscate.obfuscate m else m in
  write_file out_path (Wasm.Encode.encode m);
  write_file (out_path ^ ".abi") (Abi.to_text abi);
  Printf.printf "wrote %s (%d bytes) and %s.abi\n" out_path
    (String.length (Wasm.Encode.encode m))
    out_path

(* ---- dump / build ----------------------------------------------------- *)

let dump_cmd bin_path =
  let m = Wasm.Decode.decode (read_file bin_path) in
  print_string (Wasm.Wat.to_string m)

let build_cmd wat_path out_path =
  let m = Wasm.Text.parse (read_file wat_path) in
  let bin = Wasm.Encode.encode m in
  write_file out_path bin;
  Printf.printf "assembled %s -> %s (%d functions, %d bytes)\n" wat_path out_path
    (Array.length m.Wasm.Ast.funcs)
    (String.length bin)

(* ---- instrument ------------------------------------------------------ *)

let instrument_cmd bin_path out_path =
  let bin = read_file bin_path in
  let bin', meta = Wasai_wasabi.Instrument.instrument_binary bin in
  write_file out_path bin';
  Printf.printf "instrumented %s -> %s (%d sites, %d -> %d bytes)\n" bin_path
    out_path
    (Array.length meta.Wasai_wasabi.Trace.sites)
    (String.length bin) (String.length bin')

(* ---- scan ------------------------------------------------------------ *)

let scan_cmd dir rounds backend =
  let entries = Sys.readdir dir in
  Array.sort compare entries;
  let total = ref 0 and vulnerable = ref 0 in
  let per_flag = Hashtbl.create 8 in
  Array.iter
    (fun entry ->
      if Filename.check_suffix entry ".wasm" then begin
        incr total;
        let path = Filename.concat dir entry in
        let abi_path =
          let p = path ^ ".abi" in
          if Sys.file_exists p then Some p else None
        in
        let m, abi = load_contract path abi_path in
        let o =
          Core.Engine.fuzz
            ~cfg:(Core.Engine.make_config ~rounds:(rounds) ~backend ())
            {
              Core.Engine.tgt_account = Name.of_string "victim";
              tgt_module = m;
              tgt_abi = abi;
            }
        in
        let report = Core.Report.make ~abi ~target:entry o in
        print_endline (Core.Report.summary report);
        if Core.Report.vulnerable report then begin
          incr vulnerable;
          List.iter
            (fun (f, fired) ->
              if fired then
                Hashtbl.replace per_flag f
                  (1 + Option.value ~default:0 (Hashtbl.find_opt per_flag f)))
            o.Core.Engine.out_flags
        end
      end)
    entries;
  Printf.printf "\n%d/%d contracts flagged vulnerable\n" !vulnerable !total;
  List.iter
    (fun f ->
      match Hashtbl.find_opt per_flag f with
      | Some n -> Printf.printf "  %-14s %d\n" (Core.Scanner.string_of_flag f) n
      | None -> ())
    Core.Scanner.all_flags;
  if !vulnerable > 0 then exit 1

(* ---- report ---------------------------------------------------------- *)

let report_cmd list_oracles =
  if not list_oracles then begin
    Printf.eprintf "wasai report: nothing to do (try --list-oracles)\n";
    exit 2
  end;
  Printf.printf "%-16s %-14s %s\n" "ORACLE" "FLAG" "JOURNAL";
  List.iter
    (fun (d : Core.Oracle.def) ->
      let policy =
        if List.mem d.Core.Oracle.od_flag Core.Scanner.legacy_flags then
          "always (legacy field)"
        else "when fired (extension)"
      in
      Printf.printf "%-16s %-14s %s\n" d.Core.Oracle.od_name
        (Core.Scanner.string_of_flag d.Core.Oracle.od_flag)
        policy)
    (Core.Oracle.registered ())

(* ---- campaign -------------------------------------------------------- *)

(* Flags shared by every `wasai campaign` verb (run|merge|report), defined
   once and threaded as a record so the three subcommands cannot drift. *)
type campaign_common = {
  co_journal : string;
  co_jobs : int;
  co_out : string option;
}

let emit_campaign_report ?(telemetry = false) out
    (report : Campaign.Campaign.report) =
  let text = Campaign.Campaign.to_text report in
  (* The canonical report text is byte-stable; the telemetry breakdown
     is strictly appended after it, and only when the run profiled. *)
  let text =
    if telemetry then
      text ^ "\n"
      ^ Wasai_telemetry.Telemetry.report_text (Wasai_telemetry.Telemetry.snapshot ())
    else text
  in
  (match out with
   | Some path ->
       write_file path text;
       Printf.eprintf "campaign report written to %s\n" path
   | None -> print_string text);
  if Campaign.Campaign.vulnerable_count report > 0 then exit 1

let campaign_run_cmd ~deprecated common dir rounds backend resume shard seed corpus
    telemetry slices dry_run =
  if deprecated then
    Printf.eprintf
      "wasai campaign: the bare form is deprecated, use `wasai campaign run`\n%!";
  let targets = Campaign.Discover.dir dir in
  if targets = [] then begin
    Printf.eprintf "campaign: no .wasm/.wat contracts in %s\n" dir;
    exit 2
  end;
  let total =
    List.length
      (List.filter
         (fun (t : Campaign.Campaign.target_spec) ->
           Campaign.Shard.member shard t.Campaign.Campaign.sp_name)
         targets)
  in
  let finished = ref 0 in
  (* The default already caps at the hardware's recommended domain count;
     a larger explicit --jobs is honoured but oversubscription makes the
     OCaml 5 GC thrash (ROADMAP: 4 domains on 1 core ran ~9x slower). *)
  let recommended = Domain.recommended_domain_count () in
  if common.co_jobs > recommended then
    Printf.eprintf
      "campaign: --jobs %d exceeds the recommended domain count (%d); \
       oversubscribed domains contend in the GC and usually run slower\n%!"
      common.co_jobs recommended;
  let cfg =
    Campaign.Campaign.make_config ~jobs:common.co_jobs
      ~journal:common.co_journal ~resume ~shard ?corpus ~telemetry ~slices
      ~progress:(fun (e : Campaign.Journal.entry) ->
        incr finished;
        Printf.eprintf "  [%d/%d] %s done (%.2fs)\n%!" !finished total
          e.Campaign.Journal.je_name e.Campaign.Journal.je_elapsed)
      ~engine:
        (Core.Engine.make_config ~rounds:(rounds) ~rng_seed:(seed) ~backend ())
      ()
  in
  if dry_run then begin
    (* Print the scheduling decision (shard slices, resume skips, LPT
       order, corpus preloads) and stop before loading any contract. *)
    (try print_string (Campaign.Campaign.plan_text (Campaign.Campaign.plan cfg targets))
     with
     | Campaign.Journal.Malformed msg | Corpus.Malformed msg ->
         Printf.eprintf "campaign: %s\n" msg;
         exit 2
     | Failure msg ->
         Printf.eprintf "%s\n" msg;
         exit 2);
    exit 0
  end;
  (* Log the armed detector set up front: with the registry open to
     extensions, which oracles a campaign ran under is part of its
     provenance. *)
  let oracle_defs = Core.Oracle.registered () in
  Printf.eprintf "campaign: %d oracles armed: %s\n%!"
    (List.length oracle_defs)
    (String.concat ", "
       (List.map
          (fun (d : Core.Oracle.def) ->
            Printf.sprintf "%s[%s]" d.Core.Oracle.od_name
              (Core.Scanner.string_of_flag d.Core.Oracle.od_flag))
          oracle_defs));
  let report =
    try Campaign.Campaign.run cfg targets with
    | Campaign.Journal.Malformed msg | Corpus.Malformed msg ->
        Printf.eprintf "campaign: %s\n" msg;
        exit 2
    | Failure msg ->
        (* Library failures are already prefixed with "campaign: ". *)
        Printf.eprintf "%s\n" msg;
        exit 2
  in
  emit_campaign_report ~telemetry common.co_out report

let campaign_merge_cmd common journals =
  let report =
    try Campaign.Campaign.merge journals with
    | Campaign.Journal.Malformed msg ->
        Printf.eprintf "campaign merge: %s\n" msg;
        exit 2
    | Failure msg ->
        (* Merge failures are already prefixed with "campaign merge: ". *)
        Printf.eprintf "%s\n" msg;
        exit 2
  in
  emit_campaign_report common.co_out report

let campaign_report_cmd common =
  if not (Sys.file_exists common.co_journal) then begin
    Printf.eprintf "campaign report: no journal at %s\n" common.co_journal;
    exit 2
  end;
  let report =
    try Campaign.Campaign.of_entries (Campaign.Journal.load common.co_journal)
    with Campaign.Journal.Malformed msg ->
      Printf.eprintf "campaign report: %s\n" msg;
      exit 2
  in
  emit_campaign_report common.co_out report

(* ---- serve / submit -------------------------------------------------- *)

let serve_cmd root socket jobs depth rounds backend seed resume =
  let engine =
    (Core.Engine.make_config ~rounds:(rounds) ~rng_seed:(seed) ~backend ())
  in
  let cfg =
    try Serve.Serve.make_config ~root ~socket ~jobs ~depth ~resume ~engine ()
    with Invalid_argument msg ->
      Printf.eprintf "serve: %s\n" msg;
      exit 2
  in
  let t =
    try Serve.Serve.create cfg with
    | Failure msg ->
        Printf.eprintf "%s\n" msg;
        exit 2
    | Campaign.Journal.Malformed msg | Corpus.Malformed msg ->
        Printf.eprintf "serve: %s\n" msg;
        exit 2
  in
  (* request_stop is an atomic store + pipe write, safe from a handler. *)
  let stop _ = Serve.Serve.request_stop t in
  Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
  Printf.eprintf
    "wasai serve: listening on %s (root=%s jobs=%d depth=%d rounds=%d \
     seed=%Ld%s)\n\
     %!"
    socket root jobs depth rounds seed
    (if resume then " resume" else "");
  Serve.Serve.serve t;
  Printf.eprintf "wasai serve: drained, bye\n%!"

let fired_flags (e : Campaign.Journal.entry) =
  List.filter_map
    (fun (f, fired) -> if fired then Some (Core.Scanner.string_of_flag f) else None)
    e.Campaign.Journal.je_flags

let submit_cmd socket tenant slices path shutdown =
  if slices < 1 then begin
    Printf.eprintf "submit: --slices must be >= 1\n";
    exit 2
  end;
  let contracts =
    try Serve.Client.contracts_of_path path
    with Sys_error msg ->
      Printf.eprintf "submit: %s\n" msg;
      exit 2
  in
  if contracts = [] then begin
    Printf.eprintf "submit: no usable contracts in %s\n" path;
    exit 2
  end;
  let client =
    try Serve.Client.connect socket
    with Unix.Unix_error (e, _, _) ->
      Printf.eprintf "submit: cannot connect to %s: %s (is the daemon \
                      running?)\n"
        socket (Unix.error_message e);
      exit 2
  in
  let progress (resp : Serve.Wire.response) =
    match resp with
    | Serve.Wire.Queued { rp_name; rp_depth; _ } ->
        Printf.eprintf "  queued %s (depth %d)\n%!" rp_name rp_depth
    | Serve.Wire.Busy { rp_name; rp_retry_ms; _ } ->
        Printf.eprintf "  busy, retrying %s in %dms\n%!" rp_name rp_retry_ms
    | Serve.Wire.Verdict { rp_kind; rp_wait_ms; rp_entry; _ } ->
        let flags = fired_flags rp_entry in
        Printf.printf "%-13s %s %s (%s, %dms)\n%!"
          rp_entry.Campaign.Journal.je_name
          (if flags = [] then "ok" else "VULNERABLE")
          (if flags = [] then "-" else String.concat "," flags)
          (match rp_kind with
           | Serve.Wire.Fresh -> "fresh"
           | Serve.Wire.Cached -> "cached")
          rp_wait_ms
    | Serve.Wire.Err { rp_name = Some name; rp_reason } ->
        Printf.eprintf "  %s failed: %s\n%!" name rp_reason
    | _ -> ()
  in
  let batch =
    try Serve.Client.submit_batch ~progress ~slices client ~tenant contracts
    with
    | Serve.Client.Protocol_error msg ->
        Printf.eprintf "submit: %s\n" msg;
        exit 2
    | Unix.Unix_error (e, _, _) ->
        Printf.eprintf "submit: %s\n" (Unix.error_message e);
        exit 2
  in
  let vulnerable =
    List.length
      (List.filter
         (fun (_, _, e) -> fired_flags e <> [])
         batch.Serve.Client.bt_verdicts)
  in
  Printf.eprintf "submit: %d verdict(s), %d vulnerable, %d retries, %d \
                  error(s)\n%!"
    (List.length batch.Serve.Client.bt_verdicts)
    vulnerable batch.Serve.Client.bt_retries
    (List.length batch.Serve.Client.bt_errors);
  (if shutdown then
     try
       Serve.Client.send client Serve.Wire.Shutdown;
       let rec wait_bye () =
         match Serve.Client.next client with
         | Serve.Wire.Bye { rp_completed } ->
             Printf.eprintf "submit: daemon shut down (%d completed)\n%!"
               rp_completed
         | _ -> wait_bye ()
       in
       wait_bye ()
     with Serve.Client.Protocol_error msg ->
       Printf.eprintf "submit: shutdown: %s\n" msg;
       exit 2);
  Serve.Client.close client;
  if batch.Serve.Client.bt_errors <> [] then exit 2;
  if vulnerable > 0 then exit 1

(* ---- corpus ---------------------------------------------------------- *)

let corpus_load_or_fail path =
  if not (Sys.file_exists path) then begin
    Printf.eprintf "corpus: no corpus file at %s\n" path;
    exit 2
  end;
  try Corpus.load path
  with Corpus.Malformed msg ->
    Printf.eprintf "corpus: %s\n" msg;
    exit 2

let corpus_stats_cmd path = print_string (Corpus.stats_text (corpus_load_or_fail path))

let corpus_minimize_cmd path out dry_run =
  let c = corpus_load_or_fail path in
  let m = Corpus.minimize c in
  Printf.printf "corpus minimize: %d -> %d seeds (edge coverage preserved)\n"
    (Corpus.size c) (Corpus.size m);
  if not dry_run then begin
    let dst = Option.value ~default:path out in
    Corpus.save m dst;
    Printf.eprintf "minimized corpus written to %s\n" dst
  end

let corpus_import_cmd dst srcs =
  let c = if Sys.file_exists dst then corpus_load_or_fail dst else Corpus.create () in
  let before = Corpus.size c in
  List.iter
    (fun src ->
      let s = corpus_load_or_fail src in
      let added =
        List.fold_left
          (fun n r -> if Corpus.add c r then n + 1 else n)
          0 (Corpus.records s)
      in
      Printf.printf "  %s: %d seeds, %d new\n" src (Corpus.size s) added)
    srcs;
  Corpus.save c dst;
  Printf.printf "corpus import: %d -> %d seeds in %s\n" before (Corpus.size c)
    dst

(* ---- baseline -------------------------------------------------------- *)

let baseline_cmd bin_path =
  let m = Wasm.Decode.decode (read_file bin_path) in
  let v = Wasai_baselines.Eosafe.analyze m in
  Printf.printf "EOSAFE static analysis of %s:\n" bin_path;
  Printf.printf "  dispatcher located : %b\n" v.Wasai_baselines.Eosafe.es_located;
  Printf.printf "  timeout            : %b (paths: %d)\n"
    v.Wasai_baselines.Eosafe.es_timeout v.Wasai_baselines.Eosafe.es_paths;
  List.iter
    (fun (f, r) ->
      Printf.printf "  %-14s %s\n"
        (Core.Scanner.string_of_flag f)
        (match r with
         | Some true -> "VULNERABLE"
         | Some false -> "ok"
         | None -> "unsupported"))
    (Wasai_baselines.Eosafe.flags v)

(* ---- cmdliner wiring -------------------------------------------------- *)

let bin_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"CONTRACT.wasm")

let abi_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "abi" ] ~docv:"FILE" ~doc:"Textual ABI file (defaults to the standard profitable-contract ABI).")

let rounds_arg =
  Arg.(value & opt int 60 & info [ "rounds" ] ~doc:"Fuzzing iteration budget.")

let backend_conv =
  let parse s =
    match Core.Exec_backend.of_string s with
    | Ok c -> Ok c
    | Error msg -> Error (`Msg msg)
  in
  let print ppf c = Format.pp_print_string ppf (Core.Exec_backend.to_string c) in
  Arg.conv (parse, print)

let backend_arg =
  Arg.(
    value
    & opt backend_conv Core.Engine.default_config.Core.Engine.cfg_backend
    & info [ "backend" ] ~docv:"TIER"
        ~doc:
          "Execution tier: $(b,auto) (default; the closure-compiled tier \
           with per-opcode interpreter fallback), $(b,compiled) (the same \
           tier, chosen explicitly), or $(b,interp) (the reference \
           tree-walking interpreter).  Verdicts, coverage and journal \
           lines are byte-identical across tiers; the choice is stamped \
           into campaign and serve journal headers and validated on \
           $(b,--resume).")

let account_arg =
  Arg.(
    value & opt string "victim"
    & info [ "account" ] ~doc:"Account name to deploy the contract under.")

let verbose_arg = Arg.(value & flag & info [ "v"; "verbose" ])

let analyze_t =
  Cmd.v
    (Cmd.info "analyze" ~doc:"Fuzz a contract binary and report vulnerabilities")
    Term.(
      const analyze_cmd $ bin_arg $ abi_arg $ rounds_arg $ backend_arg
      $ account_arg $ verbose_arg)

let gen_t =
  let out =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"OUT.wasm")
  in
  let vulns =
    Arg.(
      value & opt_all string []
      & info [ "vuln" ]
          ~doc:
            "Inject a vulnerability: fake-eos, fake-notif, miss-auth, blockinfo, rollback, checks. Repeatable.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ]) in
  let obf = Arg.(value & flag & info [ "obfuscate" ]) in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a benchmark contract binary")
    Term.(const gen_cmd $ out $ vulns $ seed $ obf)

let dump_t =
  Cmd.v (Cmd.info "dump" ~doc:"Print a contract in WAT-like text")
    Term.(const dump_cmd $ bin_arg)

let build_t =
  let wat =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"SOURCE.wat")
  in
  let out =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"OUT.wasm")
  in
  Cmd.v
    (Cmd.info "build" ~doc:"Assemble a WAT-subset source file into a binary")
    Term.(const build_cmd $ wat $ out)

let instrument_t =
  let out =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"OUT.wasm")
  in
  Cmd.v
    (Cmd.info "instrument" ~doc:"Insert trace hooks into a contract binary")
    Term.(const instrument_cmd $ bin_arg $ out)

let baseline_t =
  Cmd.v
    (Cmd.info "baseline" ~doc:"Run the EOSAFE static baseline on a binary")
    Term.(const baseline_cmd $ bin_arg)

let scan_t =
  let dir = Arg.(required & pos 0 (some dir) None & info [] ~docv:"DIR") in
  Cmd.v
    (Cmd.info "scan"
       ~doc:
         "Fuzz every *.wasm in a directory (with its *.wasm.abi when present) and summarise")
    Term.(const scan_cmd $ dir $ rounds_arg $ backend_arg)

(* The shared `wasai campaign` flag group: --journal, --jobs and --out are
   defined exactly once and apply uniformly to run|merge|report. *)
let campaign_common_t =
  let journal =
    Arg.(
      value
      & opt string "campaign.journal"
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "Crash-safe journal of completed targets (appended, fsync'd); \
             also the input of $(b,report).")
  in
  let jobs =
    Arg.(
      value
      & opt int (Domain.recommended_domain_count ())
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains for $(b,run) (default: the hardware's \
             recommended count); ignored by $(b,merge) and $(b,report).")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Write the campaign report here instead of stdout.")
  in
  Term.(
    const (fun co_journal co_jobs co_out -> { co_journal; co_jobs; co_out })
    $ journal $ jobs $ out)

let shard_conv =
  let parse s =
    match Campaign.Shard.of_string s with
    | Ok t -> Ok t
    | Error msg -> Error (`Msg msg)
  in
  let print ppf t = Format.pp_print_string ppf (Campaign.Shard.to_string t) in
  Arg.conv (parse, print)

let campaign_run_term ~deprecated =
  let dir = Arg.(required & pos 0 (some dir) None & info [] ~docv:"DIR") in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:"Skip targets already completed in the journal and merge their \
                recorded results into the report.")
  in
  let shard =
    Arg.(
      value
      & opt shard_conv Campaign.Shard.whole
      & info [ "shard" ] ~docv:"I/N"
          ~doc:
            "Fuzz only the targets whose stable name hash lands in slice \
             $(i,I) of $(i,N); give each fleet machine a distinct slice and \
             $(b,merge) their journals afterwards.")
  in
  let seed =
    Arg.(
      value
      & opt int64 Core.Engine.default_config.Core.Engine.cfg_rng_seed
      & info [ "seed" ] ~docv:"S"
          ~doc:
            "Engine root RNG seed; every shard of one fleet must use the \
             same value (merge validates it).")
  in
  let corpus =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"FILE"
          ~doc:
            "Persistent seed corpus: preload each target's queue with its \
             stored coverage-bearing seeds, and append the new ones this \
             run discovers (crash-safe; the file is created on first \
             use).  A warm rerun replays the recorded coverage instead of \
             rediscovering it.")
  in
  let telemetry =
    Arg.(
      value & flag
      & info [ "telemetry" ]
          ~doc:
            "Record per-stage span telemetry (zero-interference: verdicts \
             and journal entry lines are unchanged), print the per-stage / \
             per-target critical-path breakdown after the report, and stamp \
             the journal header with telemetry=on so resumes agree.")
  in
  let slices =
    let slices_conv =
      Arg.conv
        ( (fun s ->
            match Campaign.Campaign.slicing_of_string s with
            | Ok v -> Ok v
            | Error e -> Error (`Msg e)),
          fun ppf v ->
            Format.pp_print_string ppf
              (Campaign.Campaign.string_of_slicing v) )
    in
    Arg.(
      value
      & opt slices_conv Campaign.Campaign.Off
      & info [ "slices" ] ~docv:"off|auto|K"
          ~doc:
            "Partition each target's round budget into parallel slices so \
             several domains can work one target at once.  $(b,off) (the \
             default) keeps whole-target scheduling; $(b,auto) picks a \
             per-target K from queue depth vs --jobs; a fixed $(b,K) \
             forces K slices per target (clamped to the round budget's \
             granularity).  Any slicing yields byte-identical verdicts, \
             corpus and journal entries whatever K; a resumed journal's \
             recorded K wins over this flag.")
  in
  let dry_run =
    Arg.(
      value & flag
      & info [ "dry-run" ]
          ~doc:
            "Print the scheduling plan — shard assignment, resume skips, \
             execution order (biggest module first), per-target corpus \
             preloads and the slice plan when --slices is active — then \
             exit without fuzzing anything.")
  in
  Term.(
    const
      (fun common dir rounds backend resume shard seed corpus telemetry
           slices dry_run ->
        campaign_run_cmd ~deprecated common dir rounds backend resume shard
          seed corpus telemetry slices dry_run)
    $ campaign_common_t $ dir $ rounds_arg $ backend_arg $ resume $ shard
    $ seed $ corpus $ telemetry $ slices $ dry_run)

let campaign_t =
  let run_t =
    Cmd.v
      (Cmd.info "run"
         ~doc:
           "Fuzz a directory of contracts (*.wasm/*.wat with optional *.abi \
            sidecars) in parallel over OCaml domains, journaling each \
            completed target; exits 1 when any contract is flagged")
      (campaign_run_term ~deprecated:false)
  in
  let merge_t =
    let journals =
      Arg.(
        non_empty & pos_all file []
        & info [] ~docv:"JOURNAL"
            ~doc:"Shard journals to merge (one per fleet slice).")
    in
    Cmd.v
      (Cmd.info "merge"
         ~doc:
           "Validate and merge per-shard campaign journals into the fleet \
            report: shards must be disjoint, cover 0..N-1 and share one \
            (seed, budget) configuration.  The canonical verdict and \
            evidence sections are byte-identical to an unsharded run")
      Term.(const campaign_merge_cmd $ campaign_common_t $ journals)
  in
  let report_t =
    Cmd.v
      (Cmd.info "report"
         ~doc:
           "Rebuild the campaign report from the journal alone, without \
            fuzzing anything (replays recorded verdicts and exploit \
            evidence)")
      Term.(const campaign_report_cmd $ campaign_common_t)
  in
  Cmd.group
    (Cmd.info "campaign"
       ~doc:
         "Fleet-scale fuzzing campaigns: $(b,run) a (shard of a) directory, \
          $(b,merge) shard journals, or re-$(b,report) a journal.  The bare \
          form `wasai campaign DIR` is a deprecated alias for $(b,run)")
    ~default:(campaign_run_term ~deprecated:true)
    [ run_t; merge_t; report_t ]

let corpus_t =
  let corpus_pos =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"CORPUS")
  in
  let stats_t =
    Cmd.v
      (Cmd.info "stats"
         ~doc:
           "Summarise a seed corpus: per-target seed counts, distinct \
            branch edges covered, and provenance spread")
      Term.(const corpus_stats_cmd $ corpus_pos)
  in
  let minimize_t =
    let out =
      Arg.(
        value
        & opt (some string) None
        & info [ "o"; "out" ] ~docv:"FILE"
            ~doc:"Write the minimized corpus here instead of rewriting \
                  $(i,CORPUS) in place.")
    in
    let dry_run =
      Arg.(
        value & flag
        & info [ "dry-run" ]
            ~doc:"Report the reduction without writing anything.")
    in
    Cmd.v
      (Cmd.info "minimize"
         ~doc:
           "Reduce a corpus to a greedy set-cover subset: the smallest \
            seeds-first selection whose union still covers every recorded \
            branch edge per target (deterministic)")
      Term.(const corpus_minimize_cmd $ corpus_pos $ out $ dry_run)
  in
  let import_t =
    let srcs =
      Arg.(
        non_empty & pos_right 0 file []
        & info [] ~docv:"SRC"
            ~doc:"Corpora to fold into $(i,CORPUS) (e.g. from other fleet \
                  machines).")
    in
    Cmd.v
      (Cmd.info "import"
         ~doc:
           "Merge seed corpora: fold every $(i,SRC) into $(i,CORPUS), \
            deduplicating by (target, coverage signature); $(i,CORPUS) is \
            created if absent")
      Term.(const corpus_import_cmd $ corpus_pos $ srcs)
  in
  Cmd.group
    (Cmd.info "corpus"
       ~doc:
         "Seed-corpus maintenance: $(b,stats), $(b,minimize) (greedy \
          set-cover), $(b,import) (cross-machine merge).  The corpus file \
          itself is written by `wasai campaign run --corpus`")
    [ stats_t; minimize_t; import_t ]

let socket_arg =
  Arg.(
    value
    & opt string "wasai.sock"
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket the daemon listens on.")

let serve_t =
  let root =
    Arg.(
      value
      & opt string "serve.root"
      & info [ "root" ] ~docv:"DIR"
          ~doc:
            "Served root: every tenant gets an isolated journal + corpus \
             under $(docv)/<tenant>/.")
  in
  let jobs =
    Arg.(
      value
      & opt int (Domain.recommended_domain_count ())
      & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Worker domains fuzzing submissions.")
  in
  let depth =
    Arg.(
      value
      & opt int 16
      & info [ "depth" ] ~docv:"N"
          ~doc:
            "Max in-flight submissions per tenant; beyond it the daemon \
             answers BUSY with a retry-after hint (explicit backpressure \
             instead of unbounded buffering).")
  in
  let seed =
    Arg.(
      value
      & opt int64 Core.Engine.default_config.Core.Engine.cfg_rng_seed
      & info [ "seed" ] ~docv:"S"
          ~doc:
            "Engine root RNG seed; stamped into every tenant journal line \
             and validated on $(b,--resume).")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Continue existing tenant journals: already-journaled targets \
             are served from cache, everything else is fuzzed fresh.  \
             Without it a root that already holds journals is refused.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the continuous fuzzing daemon: per-tenant journals and \
          corpora under a served root, bounded per-tenant queues with \
          backpressure, streamed verdicts, and crash-safe resume \
          ($(b,kill -9) + $(b,--resume) reproduces the uninterrupted \
          per-tenant reports byte-for-byte)")
    Term.(
      const serve_cmd $ root $ socket_arg $ jobs $ depth $ rounds_arg
      $ backend_arg $ seed $ resume)

let report_t =
  let list_oracles =
    Arg.(
      value & flag
      & info [ "list-oracles" ]
          ~doc:
            "List every registered vulnerability oracle — name, verdict \
             flag, and whether its journal field is a legacy always-present \
             column or an extension appended only when fired.")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Scanner introspection: $(b,--list-oracles) prints the detector \
          registry the engine arms for every target (the five paper \
          classes plus registered extensions)")
    Term.(const report_cmd $ list_oracles)

let submit_t =
  let tenant =
    Arg.(
      value
      & opt string "default"
      & info [ "tenant" ] ~docv:"NAME"
          ~doc:"Tenant to submit under ([a-z0-9._-], up to 32 chars).")
  in
  let path =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"PATH"
          ~doc:"A contract file (*.wasm/*.wat) or a directory of them.")
  in
  let slices =
    Arg.(
      value
      & opt int 1
      & info [ "slices" ] ~docv:"K"
          ~doc:
            "Ask the daemon to split each submission's round budget into \
             $(docv) parallel slices (the daemon clamps to its round \
             budget's granularity).  The merged verdict is byte-identical \
             whatever K; 1 (the default) keeps the classic wire form.")
  in
  let shutdown =
    Arg.(
      value & flag
      & info [ "shutdown" ]
          ~doc:"Ask the daemon to shut down after this batch completes.")
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:
         "Submit contracts to a running serve daemon and stream the \
          verdicts as they complete; exits 1 when any submission is \
          flagged vulnerable")
    Term.(const submit_cmd $ socket_arg $ tenant $ slices $ path $ shutdown)

let () =
  (* `wasai campaign DIR` is the deprecated alias for `wasai campaign run
     DIR`.  Cmdliner's group dispatch rejects DIR as an unknown command
     before the default term can see it, so rewrite the spelling here. *)
  let argv =
    let argv = Sys.argv in
    if
      Array.length argv >= 3
      && argv.(1) = "campaign"
      && String.length argv.(2) > 0
      && argv.(2).[0] <> '-'
      && not (List.mem argv.(2) [ "run"; "merge"; "report" ])
    then begin
      Printf.eprintf
        "wasai campaign: the bare form is deprecated, use `wasai campaign \
         run`\n%!";
      Array.concat
        [
          [| argv.(0); "campaign"; "run" |];
          Array.sub argv 2 (Array.length argv - 2);
        ]
    end
    else argv
  in
  let info =
    Cmd.info "wasai" ~version:"1.0.0"
      ~doc:"Concolic fuzzer for Wasm (EOSIO) smart contracts"
  in
  exit
    (Cmd.eval ~argv
       (Cmd.group info
          [
            analyze_t; gen_t; dump_t; build_t; instrument_t; baseline_t; scan_t;
            report_t; campaign_t; corpus_t; serve_t; submit_t;
          ]))
