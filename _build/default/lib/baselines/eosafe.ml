(** Reimplementation of the EOSAFE baseline (He et al. 2021): static
    symbolic execution over the raw binary, with the behaviours §4.2–4.3
    attributes to it:

    - a heuristic dispatcher matcher keyed to the SDK's indirect-call
      pattern; contracts dispatching "in diverse ways" (direct calls) are
      not located and time out;
    - path exploration that explodes on call-graph cycles — the opaque
      recursion of the obfuscator drives it to timeout;
    - timeout policy per class: Fake EOS / MissAuth report negative
      (FN), Fake Notif reports positive (its high-recall/low-precision
      behaviour);
    - a Rollback detector that inspects every branch "even if the
      constraints are impossible to be satisfied" — syntactic
      reachability, hence FPs on dead code;
    - no BlockinfoDep support. *)

module Wasm = Wasai_wasm
module Ast = Wasm.Ast

type verdicts = {
  es_fake_eos : bool;
  es_fake_notif : bool;
  es_miss_auth : bool;
  es_rollback : bool;
  es_located : bool;
  es_timeout : bool;
  es_paths : int;
}

(* ---- module facts -------------------------------------------------- *)

let import_index (m : Ast.module_) (name : string) : int option =
  let rec go i = function
    | [] -> None
    | (imp : Ast.import) :: rest -> (
        match imp.Ast.idesc with
        | Ast.Func_import _ ->
            if imp.Ast.imp_module = "env" && imp.Ast.imp_name = name then Some i
            else go (i + 1) rest
        | _ -> go i rest)
  in
  go 0 (Ast.func_imports m)

let func_body (m : Ast.module_) (abs_idx : int) : Ast.instr list option =
  let n_imp = Ast.num_func_imports m in
  if abs_idx < n_imp then None
  else Some m.Ast.funcs.(abs_idx - n_imp).Ast.body

(* Direct callees of a function body. *)
let callees (m : Ast.module_) (body : Ast.instr list) : int list =
  let out = ref [] in
  Ast.iter_instrs
    (fun i ->
      match i with
      | Ast.Call fi -> out := fi :: !out
      | Ast.Call_indirect _ ->
          (* Any table entry may be the target. *)
          List.iter
            (fun (e : Ast.elem_segment) -> out := e.Ast.e_init @ !out)
            m.Ast.elems
      | _ -> ())
    body;
  List.sort_uniq compare !out

(* Does the call graph reachable from [root] contain a cycle? *)
let has_cycle (m : Ast.module_) (root : int) : bool =
  let color = Hashtbl.create 16 in
  (* 0 = visiting, 1 = done *)
  let rec visit f =
    match Hashtbl.find_opt color f with
    | Some 0 -> true
    | Some _ -> false
    | None -> (
        Hashtbl.replace color f 0;
        let cyc =
          match func_body m f with
          | None -> false
          | Some body -> List.exists visit (callees m body)
        in
        Hashtbl.replace color f 1;
        cyc)
  in
  visit root

(* Count acyclic paths through a structured body (no condition reasoning —
   exactly the over-approximation the paper criticises), capped. *)
let rec path_count ?(cap = 100_000) (body : Ast.instr list) : int =
  List.fold_left
    (fun acc (i : Ast.instr) ->
      if acc >= cap then cap
      else
        match i with
        | Ast.If (_, t, e) ->
            min cap (acc * (path_count ~cap t + max 1 (path_count ~cap e)))
        | Ast.Br_if _ -> min cap (acc * 2)
        | Ast.Br_table (ts, _) -> min cap (acc * (List.length ts + 1))
        | Ast.Block (_, b) | Ast.Loop (_, b) -> min cap (acc * path_count ~cap b)
        | _ -> acc)
    1 body

(* Instruction-window pattern matching over a flattened body. *)
let flatten (body : Ast.instr list) : Ast.instr array =
  let out = ref [] in
  Ast.iter_instrs (fun i -> out := i :: !out) body;
  Array.of_list (List.rev !out)

(* [local.get a; ...; local.get b/const c; ...; i64.eq|ne] within a short
   window. *)
let window_has_compare (arr : Ast.instr array) ~(first : Ast.instr -> bool)
    ~(second : Ast.instr -> bool) : bool =
  let n = Array.length arr in
  let found = ref false in
  for i = 0 to n - 3 do
    if not !found then
      match arr.(i + 2) with
      | Ast.Int_compare (Wasm.Types.I64, (Ast.Eq | Ast.Ne)) ->
          if
            (first arr.(i) && second arr.(i + 1))
            || (second arr.(i) && first arr.(i + 1))
          then found := true
      | _ -> ()
  done;
  !found

(* The Listing-1 guard in apply: code (local 1) compared to
   N(eosio.token). *)
let has_eos_guard (apply_body : Ast.instr list) : bool =
  window_has_compare (flatten apply_body)
    ~first:(fun i -> i = Ast.Local_get 1)
    ~second:(fun i ->
      match i with
      | Ast.Const (Wasm.Values.I64 v) -> Int64.equal v Wasai_eosio.Name.eosio_token
      | _ -> false)

(* The Listing-2 guard in the eosponser: to (local 2) compared to _self
   (local 0). *)
let has_notif_guard (eosponser_body : Ast.instr list) : bool =
  window_has_compare (flatten eosponser_body)
    ~first:(fun i -> i = Ast.Local_get 2)
    ~second:(fun i -> i = Ast.Local_get 0)

(* Flow analysis: can an effect API execute with no auth API before it on
   some path?  Branch-insensitive on conditions (both arms taken), which
   is faithful to path-insensitive static checking. *)
let miss_auth_flow (m : Ast.module_) (body : Ast.instr list) : bool =
  let auth_ids =
    List.filter_map (import_index m) [ "require_auth"; "require_auth2"; "has_auth" ]
  in
  let effect_ids =
    List.filter_map (import_index m)
      [ "send_inline"; "db_store_i64"; "db_update_i64"; "db_remove_i64" ]
  in
  (* state: true = an unauthenticated prefix can reach this point *)
  let hit = ref false in
  let rec walk (body : Ast.instr list) (unauth : bool) : bool =
    List.fold_left
      (fun unauth (i : Ast.instr) ->
        match i with
        | Ast.Call fi when List.mem fi auth_ids -> false
        | Ast.Call fi when List.mem fi effect_ids ->
            if unauth then hit := true;
            unauth
        | Ast.If (_, t, e) ->
            let u1 = walk t unauth and u2 = walk e unauth in
            u1 || u2
        | Ast.Block (_, b) | Ast.Loop (_, b) -> walk b unauth
        | _ -> unauth)
      unauth body
  in
  ignore (walk body true);
  !hit

(* Syntactic reachability of a send_inline call from [root] through the
   call graph, ignoring branch feasibility entirely. *)
let reaches_send_inline (m : Ast.module_) (root : int) : bool =
  match import_index m "send_inline" with
  | None -> false
  | Some si ->
      let seen = Hashtbl.create 16 in
      let rec visit f =
        if Hashtbl.mem seen f then false
        else begin
          Hashtbl.replace seen f ();
          match func_body m f with
          | None -> f = si
          | Some body ->
              let cs = callees m body in
              List.mem si cs || List.exists visit cs
        end
      in
      visit root

(* ---- dispatcher heuristic ------------------------------------------ *)

(* EOSAFE's heuristic expects the SDK shape: the dispatcher performs an
   indirect call through the function table.  A module whose apply only
   uses direct calls is dispatching "in diverse ways" and is not
   located. *)
let dispatcher_located (apply_body : Ast.instr list) : bool =
  let found = ref false in
  Ast.iter_instrs
    (fun i -> match i with Ast.Call_indirect _ -> found := true | _ -> ())
    apply_body;
  !found

(* Action-function bodies: the indirect-call table entries. *)
let action_bodies (m : Ast.module_) : Ast.instr list list =
  List.concat_map
    (fun (e : Ast.elem_segment) -> List.filter_map (func_body m) e.Ast.e_init)
    m.Ast.elems

(* ---- main entry ----------------------------------------------------- *)

let path_budget = 4096

(** Statically analyse a contract binary (its decoded module). *)
let analyze (m : Ast.module_) : verdicts =
  match Ast.exported_func m "apply" with
  | None ->
      {
        es_fake_eos = false;
        es_fake_notif = true;  (* timeout policy *)
        es_miss_auth = false;
        es_rollback = false;
        es_located = false;
        es_timeout = true;
        es_paths = 0;
      }
  | Some apply_idx ->
      let apply_body = Option.value ~default:[] (func_body m apply_idx) in
      let located = dispatcher_located apply_body in
      let cycle = has_cycle m apply_idx in
      let bodies = action_bodies m in
      let paths =
        List.fold_left
          (fun acc b -> min path_budget (acc + path_count ~cap:path_budget b))
          (path_count ~cap:path_budget apply_body)
          bodies
      in
      let timeout = (not located) || cycle || paths >= path_budget in
      (* Rollback is syntactic and survives timeouts (and is why its
         precision collapses on dead code). *)
      let rollback = reaches_send_inline m apply_idx in
      if timeout then
        {
          es_fake_eos = false;
          es_fake_notif = true;
          es_miss_auth = false;
          es_rollback = rollback;
          es_located = located;
          es_timeout = true;
          es_paths = paths;
        }
      else
        let fake_eos = not (has_eos_guard apply_body) in
        let fake_notif = not (List.exists has_notif_guard bodies) in
        let miss_auth =
          List.exists (miss_auth_flow m) bodies
        in
        {
          es_fake_eos = fake_eos;
          es_fake_notif = fake_notif;
          es_miss_auth = miss_auth;
          es_rollback = rollback;
          es_located = located;
          es_timeout = false;
          es_paths = paths;
        }

(** Adapt verdicts to the scanner's flag type; [None] = unsupported. *)
let flags (v : verdicts) : (Wasai_core.Scanner.flag * bool option) list =
  [
    (Wasai_core.Scanner.Fake_eos, Some v.es_fake_eos);
    (Wasai_core.Scanner.Fake_notif, Some v.es_fake_notif);
    (Wasai_core.Scanner.Miss_auth, Some v.es_miss_auth);
    (Wasai_core.Scanner.Blockinfo_dep, None);
    (Wasai_core.Scanner.Rollback, Some v.es_rollback);
  ]
