lib/wasm/interp.ml: Array Ast Convert Float Fun I32x I64x Int32 Int64 List Memory Printf Types Values
