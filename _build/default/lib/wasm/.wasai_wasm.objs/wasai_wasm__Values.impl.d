lib/wasm/values.ml: Float Format Int32 Int64 Printf Stdlib Types
