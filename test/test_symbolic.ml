(* Tests for Symback: the memory model, calling-convention inference,
   trace replay and constraint flipping. *)

module Wasm = Wasai_wasm
module Sym = Wasai_symbolic
module Expr = Wasai_smt.Expr
module Solver = Wasai_smt.Solver
module Wasabi = Wasai_wasabi
module BG = Wasai_benchgen
open Wasai_eosio

let n = Name.of_string

(* ------------------------------------------------------------------ *)
(* Memory model (C2)                                                    *)
(* ------------------------------------------------------------------ *)

let test_memmodel_roundtrip () =
  let mem = Sym.Memmodel.create () in
  let v = Expr.var (Expr.fresh_var ~name:"v" 64) in
  Sym.Memmodel.store mem ~addr:100 ~width_bytes:8 v;
  let loaded = Sym.Memmodel.load mem ~addr:100 ~width_bytes:8 in
  (* Bytewise split and re-concatenation must be semantically the identity:
     check under an arbitrary assignment. *)
  let env = Hashtbl.create 1 in
  Expr.iter_vars (fun var -> Hashtbl.replace env var.Expr.vid 0x1122334455667788L) v;
  Alcotest.(check int64) "roundtrip value" 0x1122334455667788L (Expr.eval env loaded)

let test_memmodel_overlap () =
  (* The §3.2 example, with the concrete addresses the trace provides:
     writing 0x0000 at a and 0xffff at b with a = b leaves 0xffff. *)
  let mem = Sym.Memmodel.create () in
  Sym.Memmodel.store mem ~addr:64 ~width_bytes:2 (Expr.const 16 0x0000L);
  Sym.Memmodel.store mem ~addr:64 ~width_bytes:2 (Expr.const 16 0xFFFFL);
  Alcotest.(check bool) "overlap resolved" true
    (Sym.Memmodel.load mem ~addr:64 ~width_bytes:2 = Expr.const 16 0xFFFFL)

let test_memmodel_partial_overlap () =
  let mem = Sym.Memmodel.create () in
  Sym.Memmodel.store mem ~addr:0 ~width_bytes:4 (Expr.const 32 0xAABBCCDDL);
  Sym.Memmodel.store mem ~addr:2 ~width_bytes:1 (Expr.const 8 0x11L);
  Alcotest.(check bool) "partial overwrite" true
    (Sym.Memmodel.load mem ~addr:0 ~width_bytes:4 = Expr.const 32 0xAA11CCDDL)

let test_memmodel_symbolic_load_object () =
  let mem = Sym.Memmodel.create () in
  let l1 = Sym.Memmodel.load mem ~addr:500 ~width_bytes:1 in
  let l2 = Sym.Memmodel.load mem ~addr:500 ~width_bytes:1 in
  Alcotest.(check bool) "unsaved loads memoised" true (l1 = l2);
  let _, _, symloads = Sym.Memmodel.stats mem in
  Alcotest.(check int) "one symbolic load object" 1 symloads

(* Differential property: with fully concrete contents, the symbolic
   memory model agrees byte-for-byte with a plain byte array under random
   interleaved stores and loads (including overlaps of every width). *)
let qcheck_memmodel_vs_bytes =
  QCheck.Test.make ~name:"memmodel matches a concrete byte array" ~count:100
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Wasai_support.Rand.create (Int64.of_int seed) in
      let mem = Sym.Memmodel.create () in
      let ref_bytes = Bytes.make 256 '\000' in
      let ok = ref true in
      for _ = 1 to 60 do
        let width = Wasai_support.Rand.choose rng [ 1; 2; 4; 8 ] in
        let addr = Wasai_support.Rand.int rng (256 - width) in
        if Wasai_support.Rand.bool rng then begin
          let v = Wasai_support.Rand.next_u64 rng in
          Sym.Memmodel.store mem ~addr ~width_bytes:width
            (Expr.const (8 * width) v);
          for k = 0 to width - 1 do
            Bytes.set ref_bytes (addr + k)
              (Char.chr
                 (Int64.to_int
                    (Int64.logand (Int64.shift_right_logical v (8 * k)) 0xFFL)))
          done
        end
        else begin
          let loaded = Sym.Memmodel.load mem ~addr ~width_bytes:width in
          (* Evaluate; untouched bytes are symbolic-load variables we bind
             to 0, matching the zero-initialised reference. *)
          let env = Hashtbl.create 8 in
          Expr.iter_vars (fun v -> Hashtbl.replace env v.Expr.vid 0L) loaded;
          let expected = ref 0L in
          for k = width - 1 downto 0 do
            expected :=
              Int64.logor
                (Int64.shift_left !expected 8)
                (Int64.of_int (Char.code (Bytes.get ref_bytes (addr + k))))
          done;
          if Expr.eval env loaded <> !expected then ok := false
        end
      done;
      !ok)

let test_eosafe_memory_semantics () =
  let mem = Sym.Eosafe_memory.create () in
  Sym.Eosafe_memory.store mem ~addr:(Expr.const 32 64L) ~width_bytes:2
    (Expr.const 16 0x0000L);
  Sym.Eosafe_memory.store mem ~addr:(Expr.const 32 64L) ~width_bytes:2
    (Expr.const 16 0xFFFFL);
  let loaded = Sym.Eosafe_memory.load mem ~addr:(Expr.const 32 64L) ~width_bytes:2 in
  let env = Hashtbl.create 1 in
  Expr.iter_vars (fun v -> Hashtbl.replace env v.Expr.vid 0L) loaded;
  Alcotest.(check int64) "newest store wins" 0xFFFFL (Expr.eval env loaded);
  Alcotest.(check bool) "merge cost grows with history" true
    (Sym.Eosafe_memory.work mem > 0)

(* ------------------------------------------------------------------ *)
(* Calling convention (C3)                                              *)
(* ------------------------------------------------------------------ *)

let entry_args_of =
  [
    Wasm.Values.I64 (n "victim");  (* self *)
    Wasm.Values.I64 (n "alice");  (* from *)
    Wasm.Values.I64 (n "victim");  (* to *)
    Wasm.Values.I32 1040l;  (* quantity ptr *)
    Wasm.Values.I32 1056l;  (* memo ptr *)
  ]

let test_convention_layout () =
  let lay = Sym.Convention.infer Abi.transfer_action entry_args_of in
  Alcotest.(check int) "four params" 4 (List.length lay.Sym.Convention.lay_params);
  (* Local 0 concrete (self), locals 1-2 symbolic names, 3-4 concrete ptrs. *)
  let locals = lay.Sym.Convention.lay_locals in
  Alcotest.(check int) "five locals" 5 (List.length locals);
  (match (List.assoc 0 locals).Expr.node with
   | Expr.Const (64, v) -> Alcotest.(check int64) "self concrete" (n "victim") v
   | _ -> Alcotest.failf "local 0 not concrete: %s" (Expr.to_string (List.assoc 0 locals)));
  (match (List.assoc 1 locals).Expr.node with
   | Expr.Var _ -> ()
   | _ -> Alcotest.failf "local 1 not symbolic: %s" (Expr.to_string (List.assoc 1 locals)));
  match (List.assoc 3 locals).Expr.node with
  | Expr.Const (32, 1040L) -> ()
  | _ -> Alcotest.failf "quantity ptr wrong: %s" (Expr.to_string (List.assoc 3 locals))

let test_convention_memory_init () =
  (* Table 2: the asset pointee holds the amount and symbol variables. *)
  let lay = Sym.Convention.infer Abi.transfer_action entry_args_of in
  let mem = Sym.Memmodel.create () in
  Sym.Convention.init_memory lay entry_args_of mem;
  let amount = Sym.Memmodel.load mem ~addr:1040 ~width_bytes:8 in
  Alcotest.(check bool) "amount symbolic" true (Expr.has_any_var amount);
  let stores, _, _ = Sym.Memmodel.stats mem in
  (* amount + symbol + len byte + 32 content bytes *)
  Alcotest.(check int) "table-2 stores" 35 stores

let test_convention_concretize () =
  let lay = Sym.Convention.infer Abi.transfer_action entry_args_of in
  let model : Solver.model = Hashtbl.create 4 in
  (* Assign only the amount; everything else keeps the current seed. *)
  (match lay.Sym.Convention.lay_params with
   | _ :: _ :: (_, _, Sym.Convention.SP_asset { amount; _ }) :: _ ->
       Hashtbl.replace model amount.Expr.vid 777L
   | _ -> Alcotest.fail "unexpected layout");
  let current =
    [
      Abi.V_name (n "alice"); Abi.V_name (n "victim");
      Abi.V_asset (Asset.eos_of_units 5L); Abi.V_string "memo";
    ]
  in
  match Sym.Convention.concretize lay model ~current with
  | [ Abi.V_name f; Abi.V_name t; Abi.V_asset a; Abi.V_string m ] ->
      Alcotest.(check int64) "from kept" (n "alice") f;
      Alcotest.(check int64) "to kept" (n "victim") t;
      Alcotest.(check int64) "amount from model" 777L a.Asset.amount;
      Alcotest.(check string) "memo kept" "memo" m
  | _ -> Alcotest.fail "bad concretisation"

let test_concretize_string_extension () =
  let lay = Sym.Convention.infer Abi.transfer_action entry_args_of in
  let model : Solver.model = Hashtbl.create 4 in
  (match lay.Sym.Convention.lay_params with
   | [ _; _; _; (_, _, Sym.Convention.SP_string { content; _ }) ] ->
       (* Constrain byte 7 of the memo: the string must grow to carry it. *)
       Hashtbl.replace model content.(7).Expr.vid (Int64.of_int (Char.code 'Z'))
   | _ -> Alcotest.fail "unexpected layout");
  let current =
    [
      Abi.V_name 0L; Abi.V_name 0L;
      Abi.V_asset (Asset.eos_of_units 1L); Abi.V_string "ab";
    ]
  in
  match Sym.Convention.concretize lay model ~current with
  | [ _; _; _; Abi.V_string m ] ->
      Alcotest.(check int) "extended to 8" 8 (String.length m);
      Alcotest.(check char) "byte 7 assigned" 'Z' m.[7];
      Alcotest.(check char) "prefix kept" 'a' m.[0]
  | _ -> Alcotest.fail "bad concretisation"

let test_find_action_functions () =
  let m, _ = BG.Contracts.build (BG.Contracts.default_spec (n "victim")) in
  let cands = Sym.Convention.find_action_functions m in
  Alcotest.(check int) "four action functions" 4 (List.length cands);
  (* The obfuscator's opaque helper must not become a candidate. *)
  let obf = BG.Obfuscate.obfuscate m in
  let cands' = Sym.Convention.find_action_functions obf in
  Alcotest.(check int) "obfuscation adds no candidates" 4 (List.length cands')

(* ------------------------------------------------------------------ *)
(* Replay + flip end-to-end                                             *)
(* ------------------------------------------------------------------ *)

(* Shared harness: run one genuine transfer against a spec'd contract,
   capturing the trace; returns (buffer, meta, candidates). *)
let trace_of_spec ?(amount = 77L) ?(memo = "hi") spec =
  let m, abi = BG.Contracts.build spec in
  let chain = Host.create_chain () in
  Token.bootstrap chain ~treasury:(n "treasury") ~supply:1_000_000_0000L;
  ignore (Chain.create_account chain (n "attacker"));
  ignore (Chain.create_account chain (n "victim"));
  ignore
    (Chain.push_action chain
       (Token.transfer_action ~token:Name.eosio_token ~from:(n "treasury")
          ~to_:(n "attacker") ~quantity:(Asset.eos_of_units 500_000_0000L)
          ~memo:""));
  Token.set_balance chain ~token:Name.eosio_token ~owner:(n "victim")
    ~symbol:Asset.Symbol.eos 500_000_0000L;
  let _, meta = Wasabi.Instrument.instrument m in
  Chain.set_code chain (n "victim") meta.Wasabi.Trace.instrumented abi;
  let collector = Wasabi.Trace.create () in
  Chain.register_extension chain
    (Wasabi.Instrument.runtime_extension collector ~target:(n "victim"));
  ignore
    (Chain.push_action chain
       (Token.transfer_action ~token:Name.eosio_token ~from:(n "attacker")
          ~to_:(n "victim") ~quantity:(Asset.eos_of_units amount) ~memo));
  let candidates =
    Sym.Convention.find_action_functions meta.Wasabi.Trace.instrumented
  in
  (collector, meta, candidates)

let replay_transfer buf meta candidates =
  let module B = Wasabi.Trace.Buffer in
  let len = B.length buf in
  let rec entry_args i =
    if i + 1 >= len then None
    else if
      B.kind buf i = B.K_call_pre
      && B.kind buf (i + 1) = B.K_func_begin
      && List.mem (B.label buf (i + 1)) candidates
      && B.op_count buf i >= 5
    then Some (B.ops buf i)
    else entry_args (i + 1)
  in
  match entry_args 0 with
  | None -> Alcotest.fail "no action-function entry in trace"
  | Some args ->
      let lay = Sym.Convention.infer Abi.transfer_action args in
      (lay, Sym.Replay.run ~layout:lay ~meta ~target_funcs:candidates buf)

let gated_spec =
  {
    (BG.Contracts.default_spec (n "victim")) with
    BG.Contracts.sp_payout_inline = true;
    sp_checks =
      [ { BG.Contracts.chk_target = BG.Contracts.Chk_amount; chk_value = 123456789L } ];
  }

let test_replay_path () =
  let records, meta, candidates = trace_of_spec gated_spec in
  let _, res = replay_transfer records meta candidates in
  (* skip_self (taken=false), notif guard (taken=false), amount check
     (taken=true -> trap). *)
  Alcotest.(check int) "three conditionals" 3 (List.length res.Sym.Replay.r_path);
  Alcotest.(check int) "no imprecision" 0 res.Sym.Replay.r_imprecise;
  let last = List.nth res.Sym.Replay.r_path 2 in
  Alcotest.(check bool) "check condition is symbolic" true
    (Expr.has_any_var last.Sym.Replay.cs_cond);
  Alcotest.(check bool) "check taken (trap)" true last.Sym.Replay.cs_taken

let test_flip_solves_gate () =
  let records, meta, candidates = trace_of_spec gated_spec in
  let _, res = replay_transfer records meta candidates in
  let current =
    [
      Abi.V_name (n "attacker"); Abi.V_name (n "victim");
      Abi.V_asset (Asset.eos_of_units 77L); Abi.V_string "hi";
    ]
  in
  let solved = Sym.Flip.solve res ~current in
  let amounts =
    List.filter_map
      (fun (s : Sym.Flip.solved_seed) ->
        match s.Sym.Flip.seed_args with
        | [ _; _; Abi.V_asset a; _ ] -> Some a.Asset.amount
        | _ -> None)
      solved
  in
  Alcotest.(check bool) "some flip sets amount to the gate constant" true
    (List.mem 123456789L amounts)

let test_flip_pins_other_params () =
  let records, meta, candidates = trace_of_spec gated_spec in
  let _, res = replay_transfer records meta candidates in
  let current =
    [
      Abi.V_name (n "attacker"); Abi.V_name (n "victim");
      Abi.V_asset (Asset.eos_of_units 77L); Abi.V_string "hi";
    ]
  in
  let solved = Sym.Flip.solve res ~current in
  (* The amount-gate flip must not clobber from/to/memo (§3.4.4: mutate
     one parameter). *)
  let gate_seed =
    List.find_opt
      (fun (s : Sym.Flip.solved_seed) ->
        match s.Sym.Flip.seed_args with
        | [ _; _; Abi.V_asset a; _ ] -> a.Asset.amount = 123456789L
        | _ -> false)
      solved
  in
  match gate_seed with
  | Some { Sym.Flip.seed_args = [ Abi.V_name f; Abi.V_name t; _; Abi.V_string m ]; _ } ->
      Alcotest.(check int64) "from pinned" (n "attacker") f;
      Alcotest.(check int64) "to pinned" (n "victim") t;
      Alcotest.(check string) "memo pinned" "hi" m
  | _ -> Alcotest.fail "gate flip missing"

let test_flip_deepest_first () =
  let records, meta, candidates = trace_of_spec gated_spec in
  let _, res = replay_transfer records meta candidates in
  match Sym.Flip.candidates res with
  | first :: _ ->
      (* Deepest conditional (the amount check, index 2) comes first. *)
      Alcotest.(check int) "deepest candidate first" 2 first.Sym.Flip.cand_index
  | [] -> Alcotest.fail "no candidates"

let test_flip_respects_asserts () =
  (* Assert conditions (min_bet) are never offered for flipping. *)
  let spec =
    { (BG.Contracts.default_spec (n "victim")) with BG.Contracts.sp_min_bet = Some 10L }
  in
  let records, meta, candidates = trace_of_spec ~amount:50L spec in
  let _, res = replay_transfer records meta candidates in
  let cands = Sym.Flip.candidates res in
  List.iter
    (fun (c : Sym.Flip.candidate) ->
      let cs = List.nth res.Sym.Replay.r_path c.Sym.Flip.cand_index in
      Alcotest.(check bool) "no assert flips" true
        (cs.Sym.Replay.cs_kind <> Sym.Replay.K_assert))
    cands

let test_replay_obfuscated () =
  (* Popcount-encoded comparisons still produce solvable conditions. *)
  let m, abi = BG.Contracts.build gated_spec in
  let obf = BG.Obfuscate.obfuscate m in
  let chain = Host.create_chain () in
  Token.bootstrap chain ~treasury:(n "treasury") ~supply:1_000_000_0000L;
  ignore (Chain.create_account chain (n "attacker"));
  ignore (Chain.create_account chain (n "victim"));
  ignore
    (Chain.push_action chain
       (Token.transfer_action ~token:Name.eosio_token ~from:(n "treasury")
          ~to_:(n "attacker") ~quantity:(Asset.eos_of_units 500_000_0000L)
          ~memo:""));
  let _, meta = Wasabi.Instrument.instrument obf in
  Chain.set_code chain (n "victim") meta.Wasabi.Trace.instrumented abi;
  let collector = Wasabi.Trace.create () in
  Chain.register_extension chain
    (Wasabi.Instrument.runtime_extension collector ~target:(n "victim"));
  ignore
    (Chain.push_action chain
       (Token.transfer_action ~token:Name.eosio_token ~from:(n "attacker")
          ~to_:(n "victim") ~quantity:(Asset.eos_of_units 77L) ~memo:"hi"));
  let records = collector in
  let candidates =
    Sym.Convention.find_action_functions meta.Wasabi.Trace.instrumented
  in
  let _, res = replay_transfer records meta candidates in
  let current =
    [
      Abi.V_name (n "attacker"); Abi.V_name (n "victim");
      Abi.V_asset (Asset.eos_of_units 77L); Abi.V_string "hi";
    ]
  in
  let solved = Sym.Flip.solve res ~current in
  let amounts =
    List.filter_map
      (fun (s : Sym.Flip.solved_seed) ->
        match s.Sym.Flip.seed_args with
        | [ _; _; Abi.V_asset a; _ ] -> Some a.Asset.amount
        | _ -> None)
      solved
  in
  Alcotest.(check bool) "gate solved through popcount encoding" true
    (List.mem 123456789L amounts)

(* A hand-built contract whose action function dispatches with br_table
   and uses select — replay paths the generator family never emits. *)
let build_brtable_contract () =
  let open Wasm.Builder in
  let open Wasm.Builder.I in
  let b = create () in
  let i64t = Wasm.Types.I64 and i32t = Wasm.Types.I32 in
  let ft = Wasm.Types.func_type in
  let read_action_data =
    import_func b ~module_:"env" ~name:"read_action_data"
      (ft [ i32t; i32t ] ~results:[ i32t ])
  in
  let action_data_size =
    import_func b ~module_:"env" ~name:"action_data_size" (ft [] ~results:[ i32t ])
  in
  let printi = import_func b ~module_:"env" ~name:"printi" (ft [ i64t ]) in
  add_memory b 2;
  (* (self, from, to, qptr, memoptr): dispatch on (amount & 3); case 2
     prints select(from, to, amount bit 2 set). *)
  let case2 =
    [ local_get 1; local_get 2;
      local_get 3; i64_load (); i64 4L; i64_and; i64_eqz;
      Wasm.Ast.Eqz Wasm.Types.I32;
      select; call printi; return ]
  in
  let dispatch =
    block
      [
        block
          [
            block
              [
                block
                  [
                    local_get 3; i64_load (); i64 3L; i64_and; i32_wrap_i64;
                    br_table [ 0; 1; 2 ] 3;
                  ];
                (* case 0 *)
                local_get 1; call printi; return;
              ];
            (* case 1 *)
            local_get 2; call printi; return;
          ];
      ]
  in
  let eosponser =
    add_func b ~name:"eosponser"
      (ft [ i64t; i64t; i64t; i32t; i32t ])
      ((match dispatch with
        | Wasm.Ast.Block (bt, inner) -> [ Wasm.Ast.Block (bt, inner @ case2) ]
        | _ -> assert false)
      (* default (case 3): fall through and do nothing *))
  in
  let apply =
    add_func b ~name:"apply" (ft [ i64t; i64t; i64t ])
      [
        local_get 2; i64 Name.transfer; i64_eq;
        if_
          [
            i32 1024; call action_data_size; call read_action_data; drop;
            local_get 0;
            i32 1024; i64_load ();
            i32 1024; i64_load ~offset:8 ();
            i32 1040; i32 1056;
            call eosponser;
          ]
          [];
      ]
  in
  export_func b "apply" apply;
  let m = build b in
  Wasm.Validate.check_module m;
  m

let test_brtable_and_select_replay () =
  let m = build_brtable_contract () in
  let abi = { Abi.abi_actions = [ Abi.transfer_action ] } in
  let chain = Host.create_chain () in
  Token.bootstrap chain ~treasury:(n "treasury") ~supply:1_000_000_0000L;
  ignore (Chain.create_account chain (n "attacker"));
  ignore (Chain.create_account chain (n "victim"));
  ignore
    (Chain.push_action chain
       (Token.transfer_action ~token:Name.eosio_token ~from:(n "treasury")
          ~to_:(n "attacker") ~quantity:(Asset.eos_of_units 500_000_0000L)
          ~memo:""));
  let _, meta = Wasabi.Instrument.instrument m in
  Chain.set_code chain (n "victim") meta.Wasabi.Trace.instrumented abi;
  let collector = Wasabi.Trace.create () in
  Chain.register_extension chain
    (Wasabi.Instrument.runtime_extension collector ~target:(n "victim"));
  (* amount = 6: (6 & 3) = 2 -> the select case, bit 2 set -> from. *)
  let r =
    Chain.push_action chain
      (Token.transfer_action ~token:Name.eosio_token ~from:(n "attacker")
         ~to_:(n "victim") ~quantity:(Asset.eos_of_units 6L) ~memo:"m")
  in
  Alcotest.(check bool) "tx ok" true r.Chain.tx_ok;
  Alcotest.(check string) "select picked from" (Int64.to_string (n "attacker"))
    (Chain.console_output chain);
  let records = collector in
  let candidates =
    Sym.Convention.find_action_functions meta.Wasabi.Trace.instrumented
  in
  let _, res = replay_transfer records meta candidates in
  (* A br_table conditional on the symbolic amount is recorded... *)
  let brtables =
    List.filter
      (fun (cs : Sym.Replay.cond_state) -> cs.Sym.Replay.cs_kind = Sym.Replay.K_brtable)
      res.Sym.Replay.r_path
  in
  Alcotest.(check int) "one br_table conditional" 1 (List.length brtables);
  Alcotest.(check bool) "br_table condition is symbolic" true
    (Expr.has_any_var (List.hd brtables).Sym.Replay.cs_cond);
  (* ...and flipping it produces a seed taking a different case. *)
  let current =
    [
      Abi.V_name (n "attacker"); Abi.V_name (n "victim");
      Abi.V_asset (Asset.eos_of_units 6L); Abi.V_string "m";
    ]
  in
  let solved = Sym.Flip.solve res ~current in
  let other_case =
    List.exists
      (fun (s : Sym.Flip.solved_seed) ->
        match s.Sym.Flip.seed_args with
        | [ _; _; Abi.V_asset a; _ ] -> Int64.logand a.Asset.amount 3L <> 2L
        | _ -> false)
      solved
  in
  Alcotest.(check bool) "flip reaches a different br_table case" true other_case

(* ------------------------------------------------------------------ *)
(* Differential property: replay soundness                              *)
(* ------------------------------------------------------------------ *)

(* Every as-taken condition the replayer records must evaluate to true
   under the inputs the execution actually observed: the symbolic path
   condition characterises the concrete path. *)
let env_of_layout (lay : Sym.Convention.layout) ~from ~to_ ~(amount : int64)
    ~(symbol : int64) ~(memo : string) : (int, int64) Hashtbl.t =
  let env = Hashtbl.create 16 in
  List.iter
    (fun (pname, _, sp) ->
      match (sp : Sym.Convention.sym_param) with
      | Sym.Convention.SP_scalar v ->
          let value = if pname = "from" then from else to_ in
          Hashtbl.replace env v.Expr.vid value
      | Sym.Convention.SP_asset { amount = a; symbol = s } ->
          Hashtbl.replace env a.Expr.vid amount;
          Hashtbl.replace env s.Expr.vid symbol
      | Sym.Convention.SP_string { len; content } ->
          Hashtbl.replace env len.Expr.vid (Int64.of_int (String.length memo));
          Array.iteri
            (fun k v ->
              let b =
                if k < String.length memo then Int64.of_int (Char.code memo.[k])
                else 0L
              in
              Hashtbl.replace env v.Expr.vid b)
            content)
    lay.Sym.Convention.lay_params;
  env

let qcheck_replay_soundness =
  QCheck.Test.make ~name:"as-taken path conditions hold concretely" ~count:40
    QCheck.(pair (int_bound 1_000_000) (int_bound 1_000_000))
    (fun (seed, amt_seed) ->
      let rng = Wasai_support.Rand.create (Int64.of_int seed) in
      let base = BG.Contracts.default_spec (n "victim") in
      let spec =
        {
          base with
          BG.Contracts.sp_fake_notif_guard = Wasai_support.Rand.bool rng;
          sp_auth_check = false;
          sp_min_bet =
            (if Wasai_support.Rand.bool rng then Some 10L else None);
          sp_checks =
            BG.Verification.random_checks rng
              ~depth:(Wasai_support.Rand.int rng 3);
          sp_milestones =
            BG.Verification.random_milestones rng
              ~depth:(Wasai_support.Rand.int rng 5);
          sp_payout_inline = Wasai_support.Rand.bool rng;
        }
      in
      let amount = Int64.of_int (1 + (amt_seed mod 1_000_000)) in
      let memo = Wasai_support.Rand.ascii_string rng (Wasai_support.Rand.int rng 12) in
      let records, meta, candidates = trace_of_spec ~amount ~memo spec in
      let lay, res = replay_transfer records meta candidates in
      let env =
        env_of_layout lay ~from:(n "attacker") ~to_:(n "victim") ~amount
          ~symbol:Asset.Symbol.eos ~memo
      in
      let input_vars = Sym.Flip.layout_var_ids lay in
      let evaluable =
        List.filter
          (fun (cs : Sym.Replay.cond_state) ->
            (* Skip conditions involving memory/load/host artefacts; the
               input-only ones must hold exactly. *)
            let only_inputs = ref true in
            Expr.iter_vars
              (fun v ->
                if not (Hashtbl.mem input_vars v.Expr.vid) then
                  only_inputs := false)
              cs.Sym.Replay.cs_cond;
            !only_inputs)
          res.Sym.Replay.r_path
      in
      res.Sym.Replay.r_imprecise = 0
      && List.for_all
           (fun (cs : Sym.Replay.cond_state) ->
             Expr.eval env cs.Sym.Replay.cs_cond = 1L)
           evaluable)

(* Cursor-based replay must walk the same path whether it reads the live
   buffer or one rebuilt from the compat record view: the of_records
   round-trip pins the buffer encoding as information-preserving for
   replay.  cs_cond carries fresh variable ids (instance-dependent), so
   the comparison projects to the (site, taken, kind) skeleton plus the
   imprecision counter. *)
let qcheck_replay_buffer_roundtrip_identity =
  QCheck.Test.make ~name:"replay path identical on of_records round-trip"
    ~count:20
    QCheck.(pair (int_bound 1_000_000) (int_bound 1_000_000))
    (fun (seed, amt_seed) ->
      let rng = Wasai_support.Rand.create (Int64.of_int seed) in
      let base = BG.Contracts.default_spec (n "victim") in
      let spec =
        {
          base with
          BG.Contracts.sp_fake_notif_guard = Wasai_support.Rand.bool rng;
          sp_min_bet = (if Wasai_support.Rand.bool rng then Some 10L else None);
          sp_checks =
            BG.Verification.random_checks rng
              ~depth:(Wasai_support.Rand.int rng 3);
          sp_payout_inline = Wasai_support.Rand.bool rng;
        }
      in
      let amount = Int64.of_int (1 + (amt_seed mod 1_000_000)) in
      let buf, meta, candidates = trace_of_spec ~amount spec in
      let buf' =
        Wasabi.Trace.Compat.of_records (Wasabi.Trace.Compat.to_list buf)
      in
      let _, r1 = replay_transfer buf meta candidates in
      let _, r2 = replay_transfer buf' meta candidates in
      let skeleton (r : Sym.Replay.result) =
        List.map
          (fun (cs : Sym.Replay.cond_state) ->
            (cs.Sym.Replay.cs_site, cs.Sym.Replay.cs_taken, cs.Sym.Replay.cs_kind))
          r.Sym.Replay.r_path
      in
      skeleton r1 = skeleton r2
      && r1.Sym.Replay.r_imprecise = r2.Sym.Replay.r_imprecise)

let () =
  Alcotest.run "wasai_symbolic"
    [
      ( "memmodel",
        [
          Alcotest.test_case "symbolic roundtrip" `Quick test_memmodel_roundtrip;
          Alcotest.test_case "overlapping stores" `Quick test_memmodel_overlap;
          Alcotest.test_case "partial overlap" `Quick test_memmodel_partial_overlap;
          Alcotest.test_case "symbolic load objects" `Quick
            test_memmodel_symbolic_load_object;
          QCheck_alcotest.to_alcotest qcheck_memmodel_vs_bytes;
          Alcotest.test_case "eosafe model semantics" `Quick
            test_eosafe_memory_semantics;
        ] );
      ( "convention",
        [
          Alcotest.test_case "table-2 layout" `Quick test_convention_layout;
          Alcotest.test_case "pointee memory init" `Quick test_convention_memory_init;
          Alcotest.test_case "concretize" `Quick test_convention_concretize;
          Alcotest.test_case "string extension" `Quick
            test_concretize_string_extension;
          Alcotest.test_case "action-function discovery" `Quick
            test_find_action_functions;
        ] );
      ( "replay",
        [
          Alcotest.test_case "path extraction" `Quick test_replay_path;
          Alcotest.test_case "flip solves gate" `Quick test_flip_solves_gate;
          Alcotest.test_case "one-parameter mutation" `Quick
            test_flip_pins_other_params;
          Alcotest.test_case "deepest-first ordering" `Quick test_flip_deepest_first;
          Alcotest.test_case "asserts never flipped" `Quick
            test_flip_respects_asserts;
          Alcotest.test_case "obfuscated replay" `Quick test_replay_obfuscated;
          Alcotest.test_case "br_table and select" `Quick
            test_brtable_and_select_replay;
          QCheck_alcotest.to_alcotest qcheck_replay_soundness;
          QCheck_alcotest.to_alcotest qcheck_replay_buffer_roundtrip_identity;
        ] );
    ]
