(** Parallel fuzzing-campaign orchestrator: a shared work queue drained by
    N domains, each running the engine on an independent target; completed
    targets are journaled (fsync'd) before they count as done; the merged
    report is canonicalised by target name so its verdict section is
    identical for any worker count.

    Sharding extends the same scheme across machines: [cc_shard = i/N]
    restricts a run to the targets {!Shard.assign} maps to slice [i], the
    journal stamps every entry with the (shard, seed, budget) provenance,
    and {!merge} recombines N shard journals into the same canonical
    report an unsharded run would have produced. *)

module Core = Wasai_core
module Solver = Wasai_smt.Solver
module Metrics = Wasai_support.Metrics
module Corpus = Wasai_corpus.Corpus
module Telemetry = Wasai_telemetry.Telemetry

type target_spec = {
  sp_name : string;
  sp_size : int;
  sp_load : unit -> Core.Engine.target;
}

(** Intra-target parallelism policy: how a target's round budget is cut
    into schedulable slices (see {!Core.Engine.Slice}).  [Off] — the
    default — is the exact legacy path: whole-target work units, no v5
    fragment lines, byte-identical journals to earlier builds.  [Auto]
    lets the scheduler pick K per target from its module size and the
    remaining queue depth; [Fixed k] slices every target k ways (clamped
    to the budget's granularity).  The merged results are byte-identical
    across every K, so the policy only moves wall-clock time. *)
type slicing = Off | Auto | Fixed of int

let string_of_slicing = function
  | Off -> "off"
  | Auto -> "auto"
  | Fixed k -> string_of_int k

let slicing_of_string = function
  | "off" -> Ok Off
  | "auto" -> Ok Auto
  | s -> (
      match int_of_string_opt s with
      | Some k when k >= 1 -> Ok (Fixed k)
      | _ ->
          Error
            (Printf.sprintf
               "bad slicing %S (want off, auto or a positive slice count)" s))

type config = {
  cc_jobs : int;
  cc_engine : Core.Engine.config;
  cc_journal : string option;
  cc_resume : bool;
  cc_max_targets : int option;
  cc_progress : (Journal.entry -> unit) option;
  cc_shard : Shard.t;
  cc_corpus : string option;
  cc_telemetry : bool;
  cc_slices : slicing;
}

let make_config ~jobs ?journal ?(resume = false) ?max_targets ?progress
    ?(shard = Shard.whole) ?corpus ?(telemetry = false) ?(slices = Off)
    ~engine () =
  if jobs < 1 then
    invalid_arg (Printf.sprintf "Campaign.make_config: jobs %d < 1" jobs);
  if resume && journal = None then
    invalid_arg
      "Campaign.make_config: resume requires a journal (there is nothing to \
       resume from)";
  (match slices with
  | Fixed k when k < 1 ->
      invalid_arg
        (Printf.sprintf "Campaign.make_config: slice count %d < 1" k)
  | _ -> ());
  {
    cc_jobs = jobs;
    cc_engine = engine;
    cc_journal = journal;
    cc_resume = resume;
    cc_max_targets = max_targets;
    cc_progress = progress;
    cc_shard = shard;
    cc_corpus = corpus;
    cc_telemetry = telemetry;
    cc_slices = slices;
  }

type report = {
  cr_results : Journal.entry list;
  cr_requested : int;
  cr_skipped : int;
  cr_jobs : int;
  cr_wall : float;
  cr_shard : Shard.t;
  cr_corpus_preloaded : int;
  cr_corpus_added : int;
}

let take n xs =
  let rec go n = function
    | x :: rest when n > 0 -> x :: go (n - 1) rest
    | _ -> []
  in
  go n xs

(* The provenance every journal entry of this run carries; merge-time
   validation compares these across machines. *)
let stamp_of_config (cfg : config) : Journal.stamp =
  {
    Journal.js_shard = cfg.cc_shard;
    js_seed = cfg.cc_engine.Core.Engine.cfg_rng_seed;
    js_rounds = cfg.cc_engine.Core.Engine.cfg_rounds;
  }

let check_unique (caller : string) (targets : target_spec list) =
  let seen = Hashtbl.create 64 in
  List.iter
    (fun t ->
      if Hashtbl.mem seen t.sp_name then
        invalid_arg
          (Printf.sprintf
             "Campaign.%s: duplicate target name %S (the journal and the \
              report are keyed by name)"
             caller t.sp_name);
      Hashtbl.replace seen t.sp_name ())
    targets;
  seen

(* A journal written under a different fleet configuration would mix
   verdicts that no single run could produce; unstamped (v1/v2) entries
   predate provenance and are trusted as before.  Shared by resume,
   merge-side callers and the serve tenant registry. *)
let validate_entries ~(context : string) (stamp : Journal.stamp)
    (entries : Journal.entry list) : unit =
  List.iter
    (fun (e : Journal.entry) ->
      match e.Journal.je_stamp with
      | Some st when not (Shard.equal st.Journal.js_shard stamp.Journal.js_shard
                          && st.Journal.js_seed = stamp.Journal.js_seed
                          && st.Journal.js_rounds = stamp.Journal.js_rounds) ->
          failwith
            (Printf.sprintf
               "%s: journal entry %S was recorded under shard=%s \
                seed=%Ld budget=%d, but this run uses shard=%s seed=%Ld \
                budget=%d; refusing to mix configurations"
               context e.Journal.je_name
               (Shard.to_string st.Journal.js_shard)
               st.Journal.js_seed st.Journal.js_rounds
               (Shard.to_string stamp.Journal.js_shard)
               stamp.Journal.js_seed stamp.Journal.js_rounds)
      | _ -> ())
    entries

(* Same discipline for the file-level backend header: verdicts are
   backend-invariant by contract, but resuming a journal under a
   different execution tier would make that contract unauditable.
   Headerless legacy journals predate the stamp and are trusted as
   before.  Shared with the serve tenant registry. *)
let validate_header ~(context : string) ?(telemetry = false)
    (backend : Core.Exec_backend.choice) (header : Journal.header option) :
    unit =
  match header with
  | Some h when h.Journal.jh_backend <> backend ->
      failwith
        (Printf.sprintf
           "%s: journal was recorded under backend=%s, but this run uses \
            backend=%s; refusing to mix execution tiers"
           context
           (Core.Exec_backend.to_string h.Journal.jh_backend)
           (Core.Exec_backend.to_string backend))
  (* Telemetry cannot change a verdict, but the report's per-stage
     breakdown covers the whole journal: a resume silently flipping the
     switch would blend profiled and unprofiled targets. *)
  | Some h when h.Journal.jh_telemetry <> telemetry ->
      failwith
        (Printf.sprintf
           "%s: journal was recorded with telemetry=%s, but this run uses \
            telemetry=%s; resumes must agree"
           context
           (if h.Journal.jh_telemetry then "on" else "off")
           (if telemetry then "on" else "off"))
  | _ -> ()

(* Slice fragments carry the same three-field provenance as entries and
   are validated just as strictly: a fragment recorded under another
   fleet configuration must never seed a merge here. *)
let validate_fragments ~(context : string) (stamp : Journal.stamp)
    (frags : Journal.fragment list) : unit =
  List.iter
    (fun (f : Journal.fragment) ->
      let st = f.Journal.jf_stamp in
      if
        not
          (Shard.equal st.Journal.js_shard stamp.Journal.js_shard
          && st.Journal.js_seed = stamp.Journal.js_seed
          && st.Journal.js_rounds = stamp.Journal.js_rounds)
      then
        failwith
          (Printf.sprintf
             "%s: journal fragment %S slice %d/%d was recorded under \
              shard=%s seed=%Ld budget=%d, but this run uses shard=%s \
              seed=%Ld budget=%d; refusing to mix configurations"
             context f.Journal.jf_name
             f.Journal.jf_frag.Core.Engine.Slice.fg_slice
             f.Journal.jf_frag.Core.Engine.Slice.fg_count
             (Shard.to_string st.Journal.js_shard)
             st.Journal.js_seed st.Journal.js_rounds
             (Shard.to_string stamp.Journal.js_shard)
             stamp.Journal.js_seed stamp.Journal.js_rounds))
    frags

(* Resume: a target is done iff its entry line reached the journal; a
   slice is done iff its fragment line did. *)
let load_prior (cfg : config) (stamp : Journal.stamp) :
    Journal.entry list * Journal.fragment list =
  let prior, frags =
    match cfg.cc_journal with
    | Some path when cfg.cc_resume && Sys.file_exists path ->
        let header, entries, frags = Journal.load_full path in
        validate_header ~context:"campaign" ~telemetry:cfg.cc_telemetry
          cfg.cc_engine.Core.Engine.cfg_backend header;
        (entries, frags)
    | _ -> ([], [])
  in
  validate_entries ~context:"campaign" stamp prior;
  validate_fragments ~context:"campaign" stamp frags;
  (prior, frags)

let load_corpus (cfg : config) : Corpus.t =
  match cfg.cc_corpus with
  | Some path when Sys.file_exists path -> Corpus.load path
  | _ -> Corpus.create ()

(* Long-tail mitigation: biggest module first (classic LPT scheduling),
   so one huge contract never starts last and serialises the tail of the
   campaign.  Ties — including every spec with an unknown size of 0 —
   keep a deterministic name order.  The order only affects scheduling:
   verdicts are per-target and the report is canonicalised by name. *)
let order_targets (targets : target_spec list) : target_spec list =
  List.sort
    (fun a b ->
      match compare b.sp_size a.sp_size with
      | 0 -> compare a.sp_name b.sp_name
      | c -> c)
    targets

(* The scheduler's K-per-target decision, over the fresh (not-yet-done)
   targets in LPT order.  [Auto] slices only when the queue is shallow
   relative to the fleet — with >= 2 whole targets per domain, plain LPT
   already keeps every domain busy and slicing would only multiply
   per-slice setup costs — and then gives each target a K proportional
   to its share of the remaining work (its size against the fair
   per-domain share), clamped by the job count and by the round budget's
   granularity.  Deterministic: a pure function of (policy, jobs,
   budget, fresh set). *)
let decide_slices (cfg : config) (fresh : target_spec list) :
    (string * int) list =
  let g =
    Core.Engine.Slice.granularity
      ~rounds:cfg.cc_engine.Core.Engine.cfg_rounds
  in
  let jobs = max 1 cfg.cc_jobs in
  match cfg.cc_slices with
  | Off -> List.map (fun t -> (t.sp_name, 1)) fresh
  | Fixed k -> List.map (fun t -> (t.sp_name, max 1 (min k g))) fresh
  | Auto ->
      if List.length fresh >= jobs * 2 then
        List.map (fun t -> (t.sp_name, 1)) fresh
      else
        let total =
          List.fold_left (fun acc t -> acc + max 1 t.sp_size) 0 fresh
        in
        let fair = max 1 (total / jobs) in
        List.map
          (fun t ->
            let want = (max 1 t.sp_size + fair - 1) / fair in
            (t.sp_name, max 1 (min (min jobs g) want)))
          fresh

(* Reconstruct partially-completed slice sets from journaled fragments:
   name -> (K, slice -> fragment).  Later lines win per (name, slice),
   matching the last-entry-wins discipline for duplicate entries; one
   name carrying fragments of two different Ks is a corrupt journal. *)
let group_fragments ~(context : string) (frags : Journal.fragment list) :
    (string, int * (int, Core.Engine.Slice.fragment) Hashtbl.t) Hashtbl.t =
  let by_name = Hashtbl.create 16 in
  List.iter
    (fun (f : Journal.fragment) ->
      let fr = f.Journal.jf_frag in
      let count = fr.Core.Engine.Slice.fg_count in
      match Hashtbl.find_opt by_name f.Journal.jf_name with
      | None ->
          let tbl = Hashtbl.create 8 in
          Hashtbl.replace tbl fr.Core.Engine.Slice.fg_slice fr;
          Hashtbl.replace by_name f.Journal.jf_name (count, tbl)
      | Some (k, tbl) ->
          if k <> count then
            failwith
              (Printf.sprintf
                 "%s: journal holds fragments of both a %d-slice and a \
                  %d-slice set for %S; refusing to merge across slicings"
                 context k count f.Journal.jf_name);
          Hashtbl.replace tbl fr.Core.Engine.Slice.fg_slice fr)
    frags;
  by_name

(* The corpus seeds each member target would preload, resolved once up
   front; workers read the table concurrently but never write it. *)
let preloads_of (corpus : Corpus.t) (targets : target_spec list) =
  let preloads = Hashtbl.create 64 in
  List.iter
    (fun t ->
      match Corpus.preload corpus ~target:t.sp_name with
      | [] -> ()
      | seeds -> Hashtbl.replace preloads t.sp_name seeds)
    targets;
  preloads

let corpus_records_of ~(name : string) (stamp : Journal.stamp)
    (o : Core.Engine.outcome) : Corpus.record list =
  List.map
    (fun (i : Core.Engine.interesting) ->
      {
        Corpus.rc_target = name;
        rc_action = i.Core.Engine.is_action;
        rc_args = i.Core.Engine.is_args;
        rc_sig = i.Core.Engine.is_signature;
        rc_cover = i.Core.Engine.is_cover;
        rc_new_edges = i.Core.Engine.is_new_edges;
        rc_round = i.Core.Engine.is_round;
        rc_shard =
          ( stamp.Journal.js_shard.Shard.sh_index,
            stamp.Journal.js_shard.Shard.sh_count );
        rc_seed = stamp.Journal.js_seed;
        rc_rounds = stamp.Journal.js_rounds;
        rc_solver = o.Core.Engine.out_solver;
        rc_solver_budget = o.Core.Engine.out_final_budget;
      })
    o.Core.Engine.out_interesting

(* In-flight state of one sliced target: its spec, its slice count, and
   the fragments (journaled or freshly run) collected so far.  Guarded by
   the campaign lock. *)
type slice_agg = {
  ag_spec : target_spec;
  ag_count : int;
  ag_frags : (int, Core.Engine.Slice.fragment) Hashtbl.t;
}

let run (cfg : config) (targets : target_spec list) : report =
  let seen = check_unique "run" targets in
  (* Shard first: every later count (requested, fuzzed, skipped) describes
     this machine's slice, and names outside it never touch the journal. *)
  let targets = List.filter (fun t -> Shard.member cfg.cc_shard t.sp_name) targets in
  let stamp = stamp_of_config cfg in
  let prior, prior_frags = load_prior cfg stamp in
  let done_ = Hashtbl.create 64 in
  List.iter (fun (e : Journal.entry) -> Hashtbl.replace done_ e.Journal.je_name e) prior;
  (* Journal entries for targets outside this run's input set are ignored,
     so a shared journal never leaks foreign results into the report.
     Duplicate lines for one name (a journal appended to by a non-resume
     rerun) collapse to the last entry, matching [done_]. *)
  let prior_results =
    Hashtbl.fold
      (fun name (e : Journal.entry) acc ->
        if Hashtbl.mem seen name && Shard.member cfg.cc_shard name then e :: acc
        else acc)
      done_ []
  in
  let remaining =
    order_targets (List.filter (fun t -> not (Hashtbl.mem done_ t.sp_name)) targets)
  in
  let remaining =
    match cfg.cc_max_targets with
    | Some n -> take (max 0 n) remaining
    | None -> remaining
  in
  (* The corpus is read once, up front: the preload each target receives
     is a pure function of the corpus file at campaign start, identical
     for every worker count and schedule. *)
  let corpus = load_corpus cfg in
  let preloads = preloads_of corpus remaining in
  let corpus_preloaded =
    Hashtbl.fold (fun _ seeds acc -> acc + List.length seeds) preloads 0
  in
  let corpus_writer = Option.map Corpus.Writer.open_ cfg.cc_corpus in
  let corpus_added = ref 0 in
  let sliced = cfg.cc_slices <> Off in
  (* Journaled fragments for targets this run still has to fuzz: the
     partially-completed slice sets resume must reconstruct.  Fragments
     of already-done targets are stale leftovers of the run that merged
     them and are ignored (their entry line is the truth). *)
  let fragments_of =
    let pending = Hashtbl.create 16 in
    List.iter (fun t -> Hashtbl.replace pending t.sp_name ()) remaining;
    group_fragments ~context:"campaign"
      (List.filter
         (fun (f : Journal.fragment) -> Hashtbl.mem pending f.Journal.jf_name)
         prior_frags)
  in
  if (not sliced) && Hashtbl.length fragments_of > 0 then
    failwith
      (Printf.sprintf
         "campaign: the journal holds slice fragments for %d pending \
          target(s); resume with slicing enabled to finish them (the \
          recorded slice counts are adopted)"
         (Hashtbl.length fragments_of));
  (* K per target: the scheduler's choice, except that a target with
     journaled fragments keeps its recorded K — the queue composition
     that drove the original decision is gone, and mixing Ks within one
     slice set cannot merge. *)
  let slices_of =
    let planned = decide_slices cfg remaining in
    fun (t : target_spec) ->
      match Hashtbl.find_opt fragments_of t.sp_name with
      | Some (k, _) -> k
      | None -> ( match List.assoc_opt t.sp_name planned with
                  | Some k -> k
                  | None -> 1)
  in
  (* Work units: whole targets on the legacy path; slices otherwise,
     minus the slices whose fragments already reached the journal.  LPT
     over units — a slice's expected cost is its share of the target's
     size — with deterministic (name, slice) tie-breaks. *)
  let work_items =
    if not sliced then
      List.map (fun t -> (t, 0, 1)) remaining
    else
      let units =
        List.concat_map
          (fun t ->
            let k = slices_of t in
            let recorded =
              match Hashtbl.find_opt fragments_of t.sp_name with
              | Some (_, tbl) -> tbl
              | None -> Hashtbl.create 1
            in
            List.filter_map
              (fun i ->
                if Hashtbl.mem recorded i then None else Some (t, i, k))
              (List.init k Fun.id))
          remaining
      in
      List.stable_sort
        (fun (a, ai, ak) (b, bi, bk) ->
          match compare (b.sp_size / bk) (a.sp_size / ak) with
          | 0 -> (
              match compare a.sp_name b.sp_name with
              | 0 -> compare ai bi
              | c -> c)
          | c -> c)
        units
  in
  (* One aggregator per sliced target, pre-seeded with its journaled
     fragments. *)
  let aggs = Hashtbl.create 16 in
  if sliced then
    List.iter
      (fun t ->
        let k = slices_of t in
        let tbl = Hashtbl.create 8 in
        (match Hashtbl.find_opt fragments_of t.sp_name with
        | Some (_, recorded) ->
            Hashtbl.iter (fun i f -> Hashtbl.replace tbl i f) recorded
        | None -> ());
        Hashtbl.replace aggs t.sp_name
          { ag_spec = t; ag_count = k; ag_frags = tbl })
      remaining;
  let queue = Work_queue.create () in
  Work_queue.push_all queue work_items;
  Work_queue.close queue;
  let writer =
    Option.map
      (Journal.open_writer
         ~header:
           {
             Journal.jh_backend = cfg.cc_engine.Core.Engine.cfg_backend;
             jh_telemetry = cfg.cc_telemetry;
           })
      cfg.cc_journal
  in
  (* Flip the recorder switch before any worker domain exists:
     [Domain.spawn] orders the write ahead of everything the workers do,
     so every probe in the fleet sees one consistent setting. *)
  if cfg.cc_telemetry then Telemetry.enable ();
  let lock = Mutex.create () in
  let results = ref prior_results in
  let failures = ref [] in
  let t0 = Unix.gettimeofday () in
  (* Worker stderr is serialised under the campaign lock: slice workers
     on the same target (or any two domains) must never interleave
     partial warning lines.  Callers hold the lock. *)
  let warn_truncated name (o : Core.Engine.outcome) =
    if o.Core.Engine.out_truncated > 0 then
      Printf.eprintf
        "wasai: warning: %s: %d payload trace(s) truncated at the \
         collector limit%s; verdicts are best-effort\n%!"
        name o.Core.Engine.out_truncated
        (match o.Core.Engine.out_first_truncated with
        | Some (tx, action) ->
            Printf.sprintf " (first: %s, tx %d)"
              (Wasai_eosio.Name.to_string action)
              tx
        | None -> "")
  in
  (* Durable-completion protocol, shared by both paths (caller holds the
     lock): corpus seeds first, then the journal entry — once the target
     is journaled as done, a resumed campaign never re-fuzzes it, so its
     seeds must already be durable.  The in-memory corpus (mutated only
     here, under the campaign lock) dedupes against both the loaded file
     and this run's earlier inserts. *)
  let complete_target ~name ~elapsed (o : Core.Engine.outcome) =
    warn_truncated name o;
    let entry = Journal.of_outcome ~name ~elapsed ~stamp o in
    (match corpus_writer with
    | Some w ->
        let t_corpus = Telemetry.start () in
        List.iter
          (fun r ->
            if Corpus.add corpus r then begin
              Corpus.Writer.append w r;
              incr corpus_added
            end)
          (corpus_records_of ~name stamp o);
        Telemetry.stop Telemetry.Corpus_io t_corpus
    | None -> ());
    (* Journal next: the entry must be durable before the target is
       reported as done. *)
    Option.iter (fun w -> Journal.append w entry) writer;
    results := entry :: !results;
    Option.iter (fun f -> f entry) cfg.cc_progress
  in
  (* Merge a complete slice set into the target's final result.  The
     fold is over slices 0..K-1 in order, so the outcome — and with it
     the journal entry, the corpus additions and the report — is
     byte-identical for every K of the same budget.  Caller holds the
     lock. *)
  let finish_sliced (ag : slice_agg) =
    let frags =
      List.init ag.ag_count (fun i -> Hashtbl.find ag.ag_frags i)
    in
    let merged = Core.Engine.Slice.merge frags in
    complete_target ~name:ag.ag_spec.sp_name
      ~elapsed:merged.Core.Engine.Slice.fg_elapsed
      (Core.Engine.Slice.outcome_of_fragment merged)
  in
  (* A target's module is decoded once and shared by its slice workers;
     a racing duplicate load is benign (loads are pure) and the first
     insert wins so every worker fuzzes the same value. *)
  let load_cache = Hashtbl.create 16 in
  let load_target (spec : target_spec) =
    match
      Mutex.protect lock (fun () -> Hashtbl.find_opt load_cache spec.sp_name)
    with
    | Some t -> t
    | None ->
        let t_load = Telemetry.start () in
        let target = spec.sp_load () in
        Telemetry.stop Telemetry.Load_validate t_load;
        Mutex.protect lock (fun () ->
            match Hashtbl.find_opt load_cache spec.sp_name with
            | Some t -> t
            | None ->
                Hashtbl.replace load_cache spec.sp_name target;
                target)
  in
  (* Slice sets completed by a previous run's fragments but never merged
     (a crash between the last fragment and the entry): merge them now,
     before any worker starts — no work units were queued for them. *)
  Mutex.protect lock (fun () ->
      Hashtbl.iter
        (fun _ (ag : slice_agg) ->
          if Hashtbl.length ag.ag_frags = ag.ag_count then finish_sliced ag)
        aggs);
  let worker () =
    let rec loop () =
      match Work_queue.take queue with
      | None -> ()
      | Some (spec, slice, count) ->
          (try
             (* Attribute every span this domain records — execution,
                solving, scanning, journaling — to this work unit until
                the next one is claimed; slices are first-class targets
                in the telemetry breakdown ([name#i/K]).  Interning is a
                lock-taking cold path, so skip it when telemetry is
                off. *)
             if Telemetry.enabled () then
               Telemetry.set_target
                 (Telemetry.target_id
                    (if sliced then
                       Printf.sprintf "%s#%d/%d" spec.sp_name slice count
                     else spec.sp_name));
             let ecfg =
               match Hashtbl.find_opt preloads spec.sp_name with
               | Some seeds ->
                   { cfg.cc_engine with Core.Engine.cfg_preload = seeds }
               | None -> cfg.cc_engine
             in
             if not sliced then begin
               let t_load = Telemetry.start () in
               let target = spec.sp_load () in
               Telemetry.stop Telemetry.Load_validate t_load;
               let s0 = Unix.gettimeofday () in
               let o = Core.Engine.fuzz ~cfg:ecfg target in
               Mutex.protect lock (fun () ->
                   complete_target ~name:spec.sp_name
                     ~elapsed:(Unix.gettimeofday () -. s0)
                     o)
             end
             else begin
               let target = load_target spec in
               let frag =
                 Core.Engine.Slice.run ~cfg:ecfg ~slice ~count target
               in
               Mutex.protect lock (fun () ->
                   (* The fragment line is durable before the slice
                      counts as done: a crash now costs at most the
                      in-flight slices, and resume re-runs only those. *)
                   Option.iter
                     (fun w ->
                       Journal.append_fragment w
                         {
                           Journal.jf_name = spec.sp_name;
                           jf_stamp = stamp;
                           jf_frag = frag;
                         })
                     writer;
                   let ag = Hashtbl.find aggs spec.sp_name in
                   Hashtbl.replace ag.ag_frags slice frag;
                   if Hashtbl.length ag.ag_frags = ag.ag_count then
                     finish_sliced ag)
             end
           with exn ->
             let msg = Printexc.to_string exn in
             let unit_name =
               if sliced then
                 Printf.sprintf "%s#%d/%d" spec.sp_name slice count
               else spec.sp_name
             in
             Mutex.protect lock (fun () ->
                 failures := (unit_name, msg) :: !failures));
          loop ()
    in
    loop ()
  in
  let jobs = max 1 cfg.cc_jobs in
  (* The calling domain is worker 0; spawn the other jobs-1. *)
  let domains = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join domains;
  Option.iter Journal.close_writer writer;
  Option.iter Corpus.Writer.close corpus_writer;
  (match List.rev !failures with
   | [] -> ()
   | (name, msg) :: rest ->
       failwith
         (Printf.sprintf "campaign: target %S failed: %s%s" name msg
            (match rest with
             | [] -> ""
             | _ -> Printf.sprintf " (and %d more failures)" (List.length rest))));
  {
    cr_results =
      List.sort
        (fun (a : Journal.entry) b -> compare a.Journal.je_name b.Journal.je_name)
        !results;
    cr_requested = List.length targets;
    cr_skipped = List.length prior_results;
    cr_jobs = jobs;
    cr_wall = Unix.gettimeofday () -. t0;
    cr_shard = cfg.cc_shard;
    cr_corpus_preloaded = corpus_preloaded;
    cr_corpus_added = !corpus_added;
  }

(* ------------------------------------------------------------------ *)
(* Dry-run planning                                                    *)
(* ------------------------------------------------------------------ *)

type plan_row = {
  pr_name : string;
  pr_size : int;
  pr_shard : int;
  pr_member : bool;
  pr_done : bool;
  pr_order : int option;
  pr_preload : int;
  pr_slices : int;
      (** K this target would be partitioned into (recorded K for a
          resumed slice set, the scheduler's choice otherwise); 1 when
          slicing is off or the target is not fuzzed *)
  pr_slices_done : int;  (** journaled fragments a resume would keep *)
}

type plan = {
  pl_rows : plan_row list;
  pl_shard : Shard.t;
  pl_jobs : int;
  pl_slicing : slicing;
  pl_granularity : int;
      (** cells per target at this round budget — the ceiling on K *)
  pl_fair : int option;
      (** [Auto]'s fair per-domain share of the fresh size total, when
          the shallow-queue heuristic actually slices *)
}

(* Everything [run] would decide before spawning a single worker, without
   loading or fuzzing anything: shard membership, resume skips, LPT
   execution order and per-target corpus preloads. *)
let plan (cfg : config) (targets : target_spec list) : plan =
  ignore (check_unique "plan" targets);
  let stamp = stamp_of_config cfg in
  let prior, prior_frags = load_prior cfg stamp in
  let done_ = Hashtbl.create 64 in
  List.iter
    (fun (e : Journal.entry) -> Hashtbl.replace done_ e.Journal.je_name ())
    prior;
  let corpus = load_corpus cfg in
  let count = cfg.cc_shard.Shard.sh_count in
  (* Fresh member targets lead, in the exact order [run] would enqueue
     them; everything else (done, foreign, capped out) follows in name
     order for context. *)
  let fresh =
    let ordered =
      order_targets
        (List.filter
           (fun t ->
             Shard.member cfg.cc_shard t.sp_name
             && not (Hashtbl.mem done_ t.sp_name))
           targets)
    in
    match cfg.cc_max_targets with
    | Some n -> take (max 0 n) ordered
    | None -> ordered
  in
  (* The same K-per-target decision [run] would make, including the
     recorded-K-wins rule for slice sets a resume would pick back up. *)
  let fragments_of =
    let pending = Hashtbl.create 64 in
    List.iter (fun t -> Hashtbl.replace pending t.sp_name ()) fresh;
    group_fragments ~context:"plan"
      (List.filter
         (fun (f : Journal.fragment) -> Hashtbl.mem pending f.Journal.jf_name)
         prior_frags)
  in
  let planned_k = decide_slices cfg fresh in
  let k_of name =
    match Hashtbl.find_opt fragments_of name with
    | Some (k, _) -> k
    | None -> (
        match List.assoc_opt name planned_k with Some k -> k | None -> 1)
  in
  let row ?order t =
    let member = Shard.member cfg.cc_shard t.sp_name in
    {
      pr_name = t.sp_name;
      pr_size = t.sp_size;
      pr_shard = Shard.assign ~count t.sp_name;
      pr_member = member;
      pr_done = member && Hashtbl.mem done_ t.sp_name;
      pr_order = order;
      pr_preload =
        (if member then List.length (Corpus.preload corpus ~target:t.sp_name)
         else 0);
      pr_slices = (if order = None then 1 else k_of t.sp_name);
      pr_slices_done =
        (match Hashtbl.find_opt fragments_of t.sp_name with
        | Some (_, tbl) when order <> None -> Hashtbl.length tbl
        | _ -> 0);
    }
  in
  let planned = Hashtbl.create 64 in
  List.iter (fun t -> Hashtbl.replace planned t.sp_name ()) fresh;
  let rest =
    List.sort
      (fun a b -> compare a.sp_name b.sp_name)
      (List.filter (fun t -> not (Hashtbl.mem planned t.sp_name)) targets)
  in
  let jobs = max 1 cfg.cc_jobs in
  {
    pl_rows =
      List.mapi (fun i t -> row ~order:(i + 1) t) fresh @ List.map row rest;
    pl_shard = cfg.cc_shard;
    pl_jobs = jobs;
    pl_slicing = cfg.cc_slices;
    pl_granularity =
      Core.Engine.Slice.granularity
        ~rounds:cfg.cc_engine.Core.Engine.cfg_rounds;
    pl_fair =
      (match cfg.cc_slices with
      | Auto when List.length fresh < jobs * 2 && fresh <> [] ->
          Some
            (max 1
               (List.fold_left (fun acc t -> acc + max 1 t.sp_size) 0 fresh
               / jobs))
      | _ -> None);
  }

let plan_text (p : plan) =
  let b = Buffer.create 512 in
  let fuzzed = List.filter (fun r -> r.pr_order <> None) p.pl_rows in
  Buffer.add_string b
    (Printf.sprintf
       "campaign plan (dry run): %d targets, %d to fuzz%s, %d worker domain%s\n"
       (List.length p.pl_rows) (List.length fuzzed)
       (if Shard.is_whole p.pl_shard then ""
        else Printf.sprintf " in shard %s" (Shard.to_string p.pl_shard))
       p.pl_jobs
       (if p.pl_jobs = 1 then "" else "s"))
  ;
  let preload_total =
    List.fold_left (fun acc r -> acc + r.pr_preload) 0 fuzzed
  in
  Buffer.add_string b
    (Printf.sprintf "corpus preload: %d seed%s across %d target%s\n"
       preload_total
       (if preload_total = 1 then "" else "s")
       (List.length (List.filter (fun r -> r.pr_preload > 0) fuzzed))
       (if List.length fuzzed = 1 then "" else "s"));
  Buffer.add_string b
    "order name          size     shard  status        preload\n";
  List.iter
    (fun r ->
      let status =
        if not r.pr_member then "foreign"
        else if r.pr_done then "done (resume)"
        else if r.pr_order = None then "capped"
        else "fuzz"
      in
      let order =
        match r.pr_order with
        | Some n -> Printf.sprintf "%5d" n
        | None -> "    -"
      in
      Buffer.add_string b
        (Printf.sprintf "%s %-13s %8d %2d/%-2d  %-13s %7d\n" order r.pr_name
           r.pr_size r.pr_shard p.pl_shard.Shard.sh_count status r.pr_preload))
    p.pl_rows;
  (* The slice plan rides along only when slicing is requested, keeping
     the classic plan byte-identical for unsliced campaigns. *)
  (if p.pl_slicing <> Off then begin
     let fuzzed = List.filter (fun r -> r.pr_order <> None) p.pl_rows in
     let units = List.fold_left (fun acc r -> acc + r.pr_slices) 0 fuzzed in
     Buffer.add_string b
       (Printf.sprintf
          "slice plan (%s): %d work unit%s, granularity %d cell%s/target at \
           this budget%s\n"
          (string_of_slicing p.pl_slicing)
          units
          (if units = 1 then "" else "s")
          p.pl_granularity
          (if p.pl_granularity = 1 then "" else "s")
          (match (p.pl_slicing, p.pl_fair) with
          | Auto, Some fair ->
              Printf.sprintf ", fair share %d size/domain over %d job%s" fair
                p.pl_jobs
                (if p.pl_jobs = 1 then "" else "s")
          | Auto, None ->
              Printf.sprintf
                ", queue deep enough for %d job%s without slicing" p.pl_jobs
                (if p.pl_jobs = 1 then "" else "s")
          | _ -> ""));
     Buffer.add_string b "      name          size   slices  resumed\n";
     List.iter
       (fun r ->
         Buffer.add_string b
           (Printf.sprintf "      %-13s %8d %4d  %4d/%-4d\n" r.pr_name
              r.pr_size r.pr_slices r.pr_slices_done r.pr_slices))
       fuzzed
   end);
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Reports from journals: merge                                        *)
(* ------------------------------------------------------------------ *)

(* Duplicate lines for one name (appended by a non-resume rerun) collapse
   to the last entry, exactly as [run]'s resume path does. *)
let collapse_duplicates (entries : Journal.entry list) : Journal.entry list =
  let last = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun (e : Journal.entry) ->
      if not (Hashtbl.mem last e.Journal.je_name) then
        order := e.Journal.je_name :: !order;
      Hashtbl.replace last e.Journal.je_name e)
    entries;
  List.rev_map (fun name -> Hashtbl.find last name) !order

let of_entries (entries : Journal.entry list) : report =
  let entries = collapse_duplicates entries in
  {
    cr_results =
      List.sort
        (fun (a : Journal.entry) b ->
          compare a.Journal.je_name b.Journal.je_name)
        entries;
    cr_requested = List.length entries;
    cr_skipped = List.length entries;
    cr_jobs = 0;
    cr_wall = 0.0;
    cr_shard = Shard.whole;
    cr_corpus_preloaded = 0;
    cr_corpus_added = 0;
  }

let merge_error fmt = Printf.ksprintf (fun s -> failwith ("campaign merge: " ^ s)) fmt

(* One journal = one shard's output: every entry must carry the same
   stamp, and every name must actually hash into the stamped slice. *)
let check_journal (path, entries) : Journal.stamp * Journal.entry list =
  let entries = collapse_duplicates entries in
  let stamp_of (e : Journal.entry) =
    match e.Journal.je_stamp with
    | Some st -> st
    | None ->
        merge_error
          "%s: entry %S has no shard stamp (a v1/v2 line); merging needs v3 \
           journals — re-run the shard to refresh them"
          path e.Journal.je_name
  in
  match entries with
  | [] -> merge_error "%s: journal is empty (cannot infer its shard)" path
  | first :: _ ->
      let s0 = stamp_of first in
      List.iter
        (fun (e : Journal.entry) ->
          let st = stamp_of e in
          if
            not
              (Shard.equal st.Journal.js_shard s0.Journal.js_shard
              && st.Journal.js_seed = s0.Journal.js_seed
              && st.Journal.js_rounds = s0.Journal.js_rounds)
          then
            merge_error
              "%s: entry %S stamped shard=%s seed=%Ld budget=%d, but the \
               journal opened with shard=%s seed=%Ld budget=%d (mixed \
               configurations)"
              path e.Journal.je_name
              (Shard.to_string st.Journal.js_shard)
              st.Journal.js_seed st.Journal.js_rounds
              (Shard.to_string s0.Journal.js_shard)
              s0.Journal.js_seed s0.Journal.js_rounds;
          let count = s0.Journal.js_shard.Shard.sh_count in
          let want = s0.Journal.js_shard.Shard.sh_index in
          let got = Shard.assign ~count e.Journal.je_name in
          if got <> want then
            merge_error
              "%s: target %S hashes to shard %d/%d but the journal is \
               stamped %s (misfiled entry or renamed target)"
              path e.Journal.je_name got count
              (Shard.to_string s0.Journal.js_shard))
        entries;
      (s0, entries)

let merge (paths : string list) : report =
  if paths = [] then invalid_arg "Campaign.merge: no journals given";
  let journals =
    List.map (fun p -> check_journal (p, Journal.load p)) paths
  in
  (* Fleet-level consistency: one configuration, N disjoint slices that
     cover 0..N-1 exactly once. *)
  let (ref_stamp, _), ref_path =
    (List.hd journals, List.hd paths)
  in
  let count = ref_stamp.Journal.js_shard.Shard.sh_count in
  List.iter2
    (fun (st, _) path ->
      if
        st.Journal.js_shard.Shard.sh_count <> count
        || st.Journal.js_seed <> ref_stamp.Journal.js_seed
        || st.Journal.js_rounds <> ref_stamp.Journal.js_rounds
      then
        merge_error
          "%s (shard=%s seed=%Ld budget=%d) and %s (shard=%s seed=%Ld \
           budget=%d) come from different fleet configurations"
          ref_path
          (Shard.to_string ref_stamp.Journal.js_shard)
          ref_stamp.Journal.js_seed ref_stamp.Journal.js_rounds path
          (Shard.to_string st.Journal.js_shard)
          st.Journal.js_seed st.Journal.js_rounds)
    journals paths;
  let by_index = Hashtbl.create 8 in
  List.iter2
    (fun (st, _) path ->
      let i = st.Journal.js_shard.Shard.sh_index in
      match Hashtbl.find_opt by_index i with
      | Some other ->
          merge_error "%s and %s both claim shard %d/%d (overlapping slices)"
            other path i count
      | None -> Hashtbl.replace by_index i path)
    journals paths;
  for i = 0 to count - 1 do
    if not (Hashtbl.mem by_index i) then
      merge_error
        "shard %d/%d is missing from the given journals (incomplete \
         coverage: %d of %d shards present)"
        i count (Hashtbl.length by_index) count
  done;
  (* Disjointness of the slices makes cross-journal name collisions
     impossible once each journal passed the per-entry assign check. *)
  of_entries (List.concat_map snd journals)

(* ------------------------------------------------------------------ *)
(* Aggregation                                                         *)
(* ------------------------------------------------------------------ *)

let flag_counts (r : report) =
  List.map
    (fun f ->
      ( f,
        List.length
          (List.filter
             (fun (e : Journal.entry) ->
               List.assoc_opt f e.Journal.je_flags = Some true)
             r.cr_results) ))
    Core.Scanner.all_flags

let vulnerable_count (r : report) =
  List.length
    (List.filter
       (fun (e : Journal.entry) -> List.exists snd e.Journal.je_flags)
       r.cr_results)

let total_branches (r : report) =
  List.fold_left (fun acc (e : Journal.entry) -> acc + e.Journal.je_branches) 0
    r.cr_results

(* Fleet-wide solver/cache counters: a plain sum over per-target stats.
   Each target's counters are deterministic (sessions are per-target and
   never shared across domains), so the sum is too. *)
let solver_totals (r : report) =
  List.fold_left
    (fun acc (e : Journal.entry) -> Solver.stats_add acc e.Journal.je_solver)
    Solver.stats_zero r.cr_results

let latency_histogram (r : report) =
  let h = Metrics.Histogram.create () in
  List.iter
    (fun (e : Journal.entry) -> Metrics.Histogram.add h e.Journal.je_elapsed)
    r.cr_results;
  h

let verdict_line (e : Journal.entry) =
  let fired = List.filter_map (fun (f, b) -> if b then Some f else None) e.Journal.je_flags in
  (* Solver counters are per-target deterministic (private session per
     engine run), so they are safe inside the canonical verdict section:
     the line stays byte-identical for any worker count. *)
  let st = e.Journal.je_solver in
  Printf.sprintf
    "%-13s %-40s branches=%d rounds=%d seeds=%d adaptive=%d tx=%d sat=%d \
     imprecise=%d quick=%d blast=%d unk=%d hits=%d misses=%d fb=%d"
    e.Journal.je_name
    (match fired with
     | [] -> "ok"
     | fs ->
         "VULNERABLE ["
         ^ String.concat "; " (List.map Core.Scanner.string_of_flag fs)
         ^ "]")
    e.Journal.je_branches e.Journal.je_rounds e.Journal.je_seeds_total
    e.Journal.je_adaptive_seeds e.Journal.je_transactions
    e.Journal.je_solver_sat e.Journal.je_imprecise st.Solver.st_quick
    st.Solver.st_blasted st.Solver.st_unknown st.Solver.st_cache_hits
    st.Solver.st_cache_misses e.Journal.je_final_budget

let verdicts_text (r : report) =
  String.concat "" (List.map (fun e -> verdict_line e ^ "\n") r.cr_results)

(* The counter-free canonical artifact: verdict flags only.  Warm and cold
   runs over the same corpus reach identical verdicts in different numbers
   of rounds/seeds, so the full [verdicts_text] cannot be compared across
   corpus states — this projection can. *)
let flags_line (e : Journal.entry) =
  let fired =
    List.filter_map (fun (f, b) -> if b then Some f else None) e.Journal.je_flags
  in
  Printf.sprintf "%-13s %s" e.Journal.je_name
    (match fired with
     | [] -> "ok"
     | fs ->
         "VULNERABLE ["
         ^ String.concat "; " (List.map Core.Scanner.string_of_flag fs)
         ^ "]")

let flags_text (r : report) =
  String.concat "" (List.map (fun e -> flags_line e ^ "\n") r.cr_results)

(* Exploit evidence is as deterministic as the verdicts (the payload is
   a pure function of the per-target run), so this section is canonical
   too: byte-identical across worker counts, shardings and merges. *)
let evidence_text (r : report) =
  let b = Buffer.create 256 in
  List.iter
    (fun (e : Journal.entry) ->
      List.iter
        (fun (f, ev) ->
          Buffer.add_string b
            (Printf.sprintf "%-13s %-14s %s\n" e.Journal.je_name
               (Core.Scanner.string_of_flag f)
               (Core.Scanner.string_of_evidence ev)))
        e.Journal.je_exploits)
    r.cr_results;
  Buffer.contents b

let to_text (r : report) =
  let b = Buffer.create 1024 in
  (if r.cr_jobs = 0 then
     Buffer.add_string b
       (Printf.sprintf
          "campaign: %d targets merged from journals (0 fuzzed this run)\n"
          r.cr_requested)
   else
     Buffer.add_string b
       (Printf.sprintf
          "campaign: %d targets%s (%d fuzzed, %d resumed from journal), %d \
           worker domain%s, %.2fs wall\n"
          r.cr_requested
          (if Shard.is_whole r.cr_shard then ""
           else Printf.sprintf " in shard %s" (Shard.to_string r.cr_shard))
          (List.length r.cr_results - r.cr_skipped)
          r.cr_skipped r.cr_jobs
          (if r.cr_jobs = 1 then "" else "s")
          r.cr_wall));
  Buffer.add_string b
    (Printf.sprintf "vulnerable: %d/%d contracts, %d distinct branches explored\n"
       (vulnerable_count r)
       (List.length r.cr_results)
       (total_branches r));
  List.iter
    (fun (f, n) ->
      (* Legacy flag rows are always printed; extension-class rows appear
         only when at least one contract fired them, keeping legacy-corpus
         reports byte-identical to pre-extension builds. *)
      if n > 0 || List.mem f Core.Scanner.legacy_flags then
        Buffer.add_string b
          (Printf.sprintf "  %-14s %d\n" (Core.Scanner.string_of_flag f) n))
    (flag_counts r);
  let st = solver_totals r in
  Buffer.add_string b
    (Printf.sprintf "solver: quick=%d blasted=%d unknown=%d cache=%s\n"
       st.Solver.st_quick st.Solver.st_blasted st.Solver.st_unknown
       (Metrics.rate_string ~hits:st.Solver.st_cache_hits
          ~total:(st.Solver.st_cache_hits + st.Solver.st_cache_misses)));
  if r.cr_corpus_preloaded > 0 || r.cr_corpus_added > 0 then
    Buffer.add_string b
      (Printf.sprintf "corpus: %d seeds preloaded, %d new seeds recorded\n"
         r.cr_corpus_preloaded r.cr_corpus_added);
  Buffer.add_string b (Metrics.Histogram.to_string (latency_histogram r));
  Buffer.add_char b '\n';
  Buffer.add_string b (verdicts_text r);
  let ev = evidence_text r in
  if ev <> "" then begin
    Buffer.add_string b "exploit evidence (replayable):\n";
    Buffer.add_string b ev
  end;
  Buffer.contents b
