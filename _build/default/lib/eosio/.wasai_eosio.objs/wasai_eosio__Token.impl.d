lib/eosio/token.ml: Abi Action Asset Chain Char Database Int64 List Name Printf Queue String
