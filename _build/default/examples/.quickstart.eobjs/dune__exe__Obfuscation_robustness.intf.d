examples/obfuscation_robustness.mli:
