(** Directory-entry durability: fsync the parent after creating a file or
    directory, so a crash immediately after the create cannot lose the
    entry itself (the per-line fsync discipline of the journal/corpus
    writers only covers the file's {e contents}). *)

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          (* Some filesystems reject fsync on a directory fd; entry
             durability is best-effort there. *)
          try Unix.fsync fd with Unix.Unix_error _ -> ())

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    (match Unix.mkdir dir 0o755 with
     | () -> fsync_dir parent
     | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  end
