(** Reimplementation of the EOSFuzzer baseline (Huang et al. 2020) with
    the behaviours the paper documents in §4.2–4.3:

    - purely random seed generation with no feedback ("it only generates
      random seeds without leveraging feedback");
    - success-based oracles: a vulnerability is reported only when an
      exploit transaction completes and the contract visibly "provides
      services", which is what produces its FNs behind asserts and its
      FPs on honeypot-style contracts;
    - the Fake EOS oracle flaw: if no transaction ever executes
      successfully, the sample is flagged positive anyway;
    - no MissAuth or Rollback detectors, and a BlockinfoDep detector that
      only counts [tapos_*] calls inside successful transactions. *)

module Wasm = Wasai_wasm
module Wasabi = Wasai_wasabi
module Core = Wasai_core
open Wasai_eosio

type outcome = {
  ef_flags : (Core.Scanner.flag * bool option) list;
      (** [None] = detector not supported *)
  ef_branches : int;
  ef_timeline : (int * float * int) list;
  ef_transactions : int;
}

let flagged (o : outcome) (f : Core.Scanner.flag) : bool option =
  match List.assoc_opt f o.ef_flags with Some v -> v | None -> None

module B = Wasabi.Trace.Buffer
module Cur = Wasabi.Trace.Cursor

(* Import-call detection in a trace. *)
let calls_import meta buf names =
  let ids = List.filter_map (fun n -> Wasabi.Trace.find_env_import meta n) names in
  let cur = Cur.make buf in
  let rec go () =
    (not (Cur.at_end cur))
    && ((Cur.kind cur = B.K_call_pre
         &&
         match
           (Wasabi.Trace.site_of meta (Cur.label cur)).Wasabi.Trace.site_instr
         with
         | Wasm.Ast.Call fi -> List.mem fi ids
         | _ -> false)
       ||
       (Cur.advance cur;
        go ()))
  in
  go ()

(* "Provided services": a visible side effect of the victim. *)
let visible_effect meta buf =
  calls_import meta buf
    [
      "send_inline"; "send_deferred"; "db_store_i64"; "db_update_i64";
      "db_remove_i64"; "printi"; "prints"; "printn";
    ]

let fuzz ?(rounds = 60) ?(rng_seed = 2L) (target : Core.Engine.target) :
    outcome =
  let cfg =
    (Core.Engine.make_config ~rounds:(rounds) ~rng_seed:(rng_seed) ~feedback:false ())
  in
  let s = Core.Engine.setup cfg target in
  let t0 = Unix.gettimeofday () in
  let timeline = ref [] in
  let meta = s.Core.Engine.meta in
  (* "EOSFuzzer fails to execute the fuzzing target every time and flags
     all samples as vulnerable in detecting the Fake EOS" (§4.3): success
     is tracked over the transfer payloads, the fuzzing target. *)
  let any_success = ref false in
  let fake_eos = ref false in
  let fake_notif = ref false in
  let blockinfo = ref false in
  let actions = Array.of_list target.Core.Engine.tgt_abi.Abi.abi_actions in
  for round = 0 to rounds - 1 do
    let def = actions.(round mod Array.length actions) in
    (* Fresh random seed every time: no pool evolution. *)
    let seed =
      Core.Seed.random s.Core.Engine.rng ~identities:s.Core.Engine.identities def
    in
    let channels =
      if Name.equal def.Abi.act_name Name.transfer then
        Core.Scanner.
          [ Ch_genuine; Ch_direct; Ch_fake_token; Ch_fake_notif ]
      else [ Core.Scanner.Ch_action def.Abi.act_name ]
    in
    let candidates = s.Core.Engine.scanner.Core.Scanner.action_candidates in
    List.iter
      (fun channel ->
        let ex = Core.Engine.run_one s seed channel in
        let buf = ex.Core.Engine.ex_trace in
        if ex.Core.Engine.ex_result.Chain.tx_ok then begin
          (* "Executed successfully" = the transaction committed AND the
             fuzzing target's action function actually ran. *)
          (match channel with
           | Core.Scanner.Ch_action _ -> ()
           | _ ->
               if
                 List.exists
                   (fun f -> List.mem f candidates)
                   ex.Core.Engine.ex_scan.Core.Engine.sc_executed
               then any_success := true);
          let effect = visible_effect meta buf in
          (match channel with
           | Core.Scanner.Ch_direct | Core.Scanner.Ch_fake_token ->
               (* Flaw: positive no matter which action responded. *)
               if B.length buf > 0 && effect then fake_eos := true
           | Core.Scanner.Ch_fake_notif -> if effect then fake_notif := true
           | Core.Scanner.Ch_genuine | Core.Scanner.Ch_action _ -> ());
          if calls_import meta buf [ "tapos_block_prefix"; "tapos_block_num" ]
          then blockinfo := true
        end)
      channels;
    timeline :=
      (round, Unix.gettimeofday () -. t0, Hashtbl.length s.Core.Engine.branches)
      :: !timeline
  done;
  (* Oracle flaw (§4.3): a sample where nothing ever executed successfully
     is reported as Fake EOS-vulnerable. *)
  if not !any_success then fake_eos := true;
  {
    ef_flags =
      [
        (Core.Scanner.Fake_eos, Some !fake_eos);
        (Core.Scanner.Fake_notif, Some !fake_notif);
        (Core.Scanner.Miss_auth, None);
        (Core.Scanner.Blockinfo_dep, Some !blockinfo);
        (Core.Scanner.Rollback, None);
      ];
    ef_branches = Hashtbl.length s.Core.Engine.branches;
    ef_timeline = List.rev !timeline;
    ef_transactions = s.Core.Engine.transactions;
  }
