lib/benchgen/obfuscate.mli: Wasai_wasm
