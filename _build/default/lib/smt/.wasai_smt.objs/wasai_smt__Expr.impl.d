lib/smt/expr.ml: Format Hashtbl Int64 List Printf
