(** The [eosio.token] contract, implemented natively against the same chain
    interfaces a Wasm contract sees.

    The same code deployed under a different account is exactly the
    paper's fake-token attack vector: anyone may create a token whose
    symbol is "EOS" under their own contract account, and the [code]
    parameter of the victim's [apply] is the only way to tell them apart. *)

let accounts_tbl = Name.of_string "accounts"
let stat_tbl = Name.of_string "stat"

let le64 (v : int64) =
  String.init 8 (fun i ->
      Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL)))

let read64 s = Abi.read_le s 0 8

(* Balances: scope = owner, table = "accounts", id = symbol code, value =
   amount (8 bytes LE).  Supply: scope = symbol, table = "stat". *)

let balance_of chain ~token ~owner ~symbol : int64 =
  match
    Database.get_row chain.Chain.db ~code:token ~scope:owner ~tbl:accounts_tbl
      ~id:symbol
  with
  | Some data -> read64 data
  | None -> 0L

let set_balance chain ~token ~owner ~symbol (v : int64) =
  Database.put_row chain.Chain.db ~code:token ~scope:owner ~tbl:accounts_tbl
    ~id:symbol ~data:(le64 v)

let issuer_of chain ~token ~symbol : Name.t option =
  match
    Database.get_row chain.Chain.db ~code:token ~scope:symbol ~tbl:stat_tbl
      ~id:symbol
  with
  | Some data when String.length data >= 16 -> Some (Abi.read_le data 8 8)
  | _ -> None

let assert_ cond msg = if not cond then raise (Chain.Assert_failed msg)

let do_create (ctx : Chain.context) (args : Abi.value list) =
  match args with
  | [ Abi.V_name issuer; Abi.V_asset max_supply ] ->
      let chain = ctx.Chain.chain in
      let token = ctx.Chain.ctx_receiver in
      let symbol = max_supply.Asset.symbol in
      assert_ (Asset.is_valid max_supply) "invalid supply";
      assert_
        (issuer_of chain ~token ~symbol = None)
        "token with symbol already exists";
      (* stat row: supply (8) | issuer (8) | max supply (8) *)
      Database.put_row chain.Chain.db ~code:token ~scope:symbol ~tbl:stat_tbl
        ~id:symbol
        ~data:(le64 0L ^ le64 issuer ^ le64 max_supply.Asset.amount)
  | _ -> raise (Chain.Assert_failed "create: bad arguments")

let do_issue (ctx : Chain.context) (args : Abi.value list) =
  match args with
  | [ Abi.V_name to_; Abi.V_asset quantity; Abi.V_string _memo ] ->
      let chain = ctx.Chain.chain in
      let token = ctx.Chain.ctx_receiver in
      let symbol = quantity.Asset.symbol in
      (match issuer_of chain ~token ~symbol with
       | None -> raise (Chain.Assert_failed "token with symbol does not exist")
       | Some issuer ->
           assert_
             (List.exists (Name.equal issuer) ctx.Chain.ctx_action.Action.act_auth)
             "issue: missing issuer authority";
           assert_ (Int64.compare quantity.Asset.amount 0L > 0)
             "must issue positive quantity";
           let bal = balance_of chain ~token ~owner:to_ ~symbol in
           set_balance chain ~token ~owner:to_ ~symbol
             (Int64.add bal quantity.Asset.amount))
  | _ -> raise (Chain.Assert_failed "issue: bad arguments")

let do_transfer (ctx : Chain.context) (args : Abi.value list) =
  match args with
  | [ Abi.V_name from; Abi.V_name to_; Abi.V_asset quantity; Abi.V_string _ ] ->
      let chain = ctx.Chain.chain in
      let token = ctx.Chain.ctx_receiver in
      let symbol = quantity.Asset.symbol in
      assert_ (not (Name.equal from to_)) "cannot transfer to self";
      assert_
        (List.exists (Name.equal from) ctx.Chain.ctx_action.Action.act_auth)
        (Printf.sprintf "transfer: missing authority of %s" (Name.to_string from));
      assert_ (Chain.is_account chain to_) "to account does not exist";
      assert_ (Int64.compare quantity.Asset.amount 0L > 0)
        "must transfer positive quantity";
      let from_bal = balance_of chain ~token ~owner:from ~symbol in
      assert_
        (Int64.compare from_bal quantity.Asset.amount >= 0)
        "overdrawn balance";
      set_balance chain ~token ~owner:from ~symbol
        (Int64.sub from_bal quantity.Asset.amount);
      let to_bal = balance_of chain ~token ~owner:to_ ~symbol in
      set_balance chain ~token ~owner:to_ ~symbol
        (Int64.add to_bal quantity.Asset.amount);
      (* Notify both parties — steps 2 and 3 of the paper's Figure 1. *)
      Queue.add from ctx.Chain.ctx_notify;
      Queue.add to_ ctx.Chain.ctx_notify
  | _ -> raise (Chain.Assert_failed "transfer: bad arguments")

(** The token contract's apply.  On notifications (receiver != code) it
    does nothing, like the real contract. *)
let apply (ctx : Chain.context) =
  if Name.equal ctx.Chain.ctx_receiver ctx.Chain.ctx_code then begin
    let act = ctx.Chain.ctx_action in
    let dispatch def handler =
      handler ctx (Abi.deserialize def act.Action.act_data)
    in
    let n = act.Action.act_name in
    if Name.equal n Name.transfer then dispatch Abi.transfer_action do_transfer
    else if Name.equal n (Name.of_string "issue") then
      match Abi.find_action Abi.token_abi n with
      | Some def -> dispatch def do_issue
      | None -> assert false
    else if Name.equal n (Name.of_string "create") then
      match Abi.find_action Abi.token_abi n with
      | Some def -> dispatch def do_create
      | None -> assert false
    else raise (Chain.Assert_failed "token: unknown action")
  end

(** Deploy the token code under [account] (use [Name.eosio_token] for the
    official token, anything else for a fake one). *)
let deploy chain (token_account : Name.t) =
  Chain.set_native chain token_account apply Abi.token_abi

(** Deploy the official token, create the EOS currency and issue an initial
    supply to [treasury]. *)
let bootstrap chain ~(treasury : Name.t) ~(supply : int64) =
  deploy chain Name.eosio_token;
  ignore (Chain.create_account chain treasury);
  let max_supply = max supply 1_000_000_000_0000L in
  let create_act =
    Action.of_args ~account:Name.eosio_token ~name:(Name.of_string "create")
      ~args:
        [ Abi.V_name Name.eosio_token; Abi.V_asset (Asset.eos_of_units max_supply) ]
      ~auth:[ Name.eosio_token ]
  in
  let issue_act =
    Action.of_args ~account:Name.eosio_token ~name:(Name.of_string "issue")
      ~args:
        [
          Abi.V_name treasury;
          Abi.V_asset (Asset.eos_of_units supply);
          Abi.V_string "genesis";
        ]
      ~auth:[ Name.eosio_token ]
  in
  let r1 = Chain.push_action chain create_act in
  let r2 = Chain.push_action chain issue_act in
  assert_ r1.Chain.tx_ok "token create failed";
  assert_ r2.Chain.tx_ok "token issue failed"

(** Transfer convenience used throughout tests and the fuzzer. *)
let transfer_action ~token ~from ~to_ ~quantity ~memo : Action.t =
  Action.of_args ~account:token ~name:Name.transfer
    ~args:
      [ Abi.V_name from; Abi.V_name to_; Abi.V_asset quantity; Abi.V_string memo ]
    ~auth:[ from ]

let eos_balance chain ~owner =
  balance_of chain ~token:Name.eosio_token ~owner ~symbol:Asset.Symbol.eos
