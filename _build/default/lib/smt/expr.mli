(** Bitvector expressions (widths 1–64), the constraint language of the
    symbolic executor.  Stands in for Z3's BitVec terms; booleans are
    width-1 vectors.  Smart constructors fold constants aggressively so
    fully concrete replays never reach the solver. *)

type width = int

type var = {
  vid : int;  (** unique id *)
  vname : string;  (** debug name *)
  vwidth : width;
}

type unop =
  | Not  (** bitwise complement *)
  | Neg  (** two's complement negation *)
  | Popcnt
  | Clz
  | Ctz

type binop =
  | Add | Sub | Mul
  | Udiv | Urem | Sdiv | Srem
  | And | Or | Xor
  | Shl | Lshr | Ashr
  | Rotl | Rotr

type cmp = Eq | Ult | Slt | Ule | Sle

type t =
  | Const of width * int64  (** value masked to width *)
  | Var of var
  | Unop of unop * t
  | Binop of binop * t * t
  | Cmp of cmp * t * t  (** width-1 result *)
  | Ite of t * t * t  (** condition has width 1 *)
  | Extract of int * int * t  (** [Extract (hi, lo, e)], bits lo..hi inclusive *)
  | Concat of t * t  (** [Concat (hi, lo)]: hi bits above lo bits *)
  | Zext of width * t
  | Sext of width * t

(** {1 Widths and values} *)

val mask : width -> int64 -> int64
(** Keep the low [width] bits. *)

val width_of : t -> width

val to_signed : width -> int64 -> int64
(** Interpret a masked value as signed. *)

(** {1 Variables} *)

val fresh_var : ?name:string -> width -> var
val var : var -> t

(** {1 Concrete semantics} *)

val eval_unop : width -> unop -> int64 -> int64
val eval_binop : width -> binop -> int64 -> int64 -> int64
val eval_cmp : width -> cmp -> int64 -> int64 -> bool

(** {1 Smart constructors (constant-folding)} *)

val const : width -> int64 -> t
val bool_ : bool -> t
val true_ : t
val false_ : t
val is_true : t -> bool
val is_false : t -> bool
val unop : unop -> t -> t
val binop : binop -> t -> t -> t
val cmp : cmp -> t -> t -> t
val ite : t -> t -> t -> t
val extract : int -> int -> t -> t
val concat : t -> t -> t
val zext : width -> t -> t
val sext : width -> t -> t

val not_ : t -> t
(** Boolean negation of a width-1 vector. *)

val and_ : t -> t -> t
val or_ : t -> t -> t
val conj : t list -> t
val eq : t -> t -> t
val ne : t -> t -> t

(** {1 Traversal and evaluation} *)

val iter_vars : (var -> unit) -> t -> unit
val vars : t -> var list
val contains_var : (var -> bool) -> t -> bool
val has_any_var : t -> bool

val subst : (var -> t option) -> t -> t
(** Substitute variables; [None] keeps the variable.  Rebuilds through the
    smart constructors, so substitution also simplifies. *)

val eval : (int, int64) Hashtbl.t -> t -> int64
(** Evaluate under a full assignment (variable id -> value); raises
    [Not_found] on unassigned variables. *)

(** {1 Printing} *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
