lib/eosio/name.mli: Format
