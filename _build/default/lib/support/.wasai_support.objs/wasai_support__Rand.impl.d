lib/support/rand.ml: Array Char Int64 List String
