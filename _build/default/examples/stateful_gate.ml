(* Transaction dependency: stateful contracts need the right *sequence*
   of actions, not just the right arguments.

     dune exec examples/stateful_gate.exe

   The contract only serves players with a row in its [players] table —
   written by a separate [deposit] action.  A fuzzer that treats actions
   independently never gets past the gate; WASAI's database-dependency
   graph (§3.3.2) observes the failed read, finds the writer, and
   schedules a deposit before the transfer. *)

module BG = Wasai_benchgen
module Core = Wasai_core
open Wasai_eosio

let n = Name.of_string

let () =
  print_endline "== Resolving a database gate with the dependency graph ==\n";
  let spec =
    {
      (BG.Contracts.default_spec (n "casino")) with
      BG.Contracts.sp_db_gate = true;  (* eosio_assert(players[from], ...) *)
      sp_payout_inline = true;  (* the vulnerability behind the gate *)
    }
  in
  let m, abi = BG.Contracts.build spec in
  let target =
    { Core.Engine.tgt_account = n "casino"; tgt_module = m; tgt_abi = abi }
  in
  let outcome = Core.Engine.fuzz target in
  Printf.printf "with DBG sequencing:  Rollback %s (%d transactions)\n"
    (if Core.Engine.flagged outcome Core.Scanner.Rollback then "FOUND" else "missed")
    outcome.Core.Engine.out_transactions;
  assert (Core.Engine.flagged outcome Core.Scanner.Rollback);

  (* The paper's documented limitation (§5): the graph is table-granular.
     When the gate's row id comes from a *different action's parameter*
     (the meta table written by [setup value]), knowing "setup writes
     meta" is not enough — the values never line up. *)
  let hard =
    {
      spec with
      BG.Contracts.sp_multi_table = true;
      sp_auth_check = false;
      sp_deposit_auth = Some true;
    }
  in
  let m, abi = BG.Contracts.build hard in
  let outcome =
    Core.Engine.fuzz
      { Core.Engine.tgt_account = n "casino"; tgt_module = m; tgt_abi = abi }
  in
  Printf.printf "multi-table variant:  MissAuth %s — the documented FN\n"
    (if Core.Engine.flagged outcome Core.Scanner.Miss_auth then "found" else "MISSED");
  assert (not (Core.Engine.flagged outcome Core.Scanner.Miss_auth));
  assert (BG.Contracts.ground_truth hard BG.Contracts.Miss_auth);
  print_endline
    "\ntable-level tracking sequences the deposit but cannot correlate the\n\
     setup parameter with the payer: WASAI's coarse-granularity limit,\n\
     kept as real behaviour."
