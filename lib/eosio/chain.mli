(** Local blockchain: accounts, contract deployment, and the transaction
    execution machinery (notification forwarding, depth-first inline
    actions with whole-transaction rollback, deferred transactions).

    This replaces Nodeos in the paper's setup; consensus, networking and
    signatures are irrelevant to every experiment and are not modelled. *)

module Interp = Wasai_wasm.Interp

exception Assert_failed of string
(** [eosio_assert] failure: aborts and rolls back the transaction. *)

exception Eosio_exit
(** [eosio_exit]: terminates the current contract cleanly. *)

type contract_impl =
  | Wasm_contract of Wasai_wasm.Ast.module_
  | Native_contract of (context -> unit)

and account = {
  acc_name : Name.t;
  mutable acc_contract : contract_impl option;
  mutable acc_abi : Abi.t option;
  mutable acc_executor : (context -> unit) option;
      (** alternative execution tier for a deployed Wasm contract; must be
          observationally identical to the interpreter path.  Cleared
          whenever the code changes. *)
}

and t = {
  db : Database.t;
  accounts : (Name.t, account) Hashtbl.t;
  mutable block_num : int32;
  mutable block_prefix : int32;
  mutable head_time_us : int64;
  mutable fuel_per_action : int;
  mutable deferred : Action.transaction list;
  mutable extensions : extension list;
      (** extra import namespaces (host API, instrumentation hooks) *)
  mutable console : Buffer.t;
}

and extension = context -> string -> string -> Interp.extern option
(** Import resolver parameterised by the executing context. *)

(** Per-action execution context handed to host functions and native
    contracts. *)
and context = {
  chain : t;
  ctx_receiver : Name.t;  (** the notified/executing account *)
  ctx_code : Name.t;  (** the account the action was sent to *)
  ctx_action : Action.t;
  mutable ctx_inst : Interp.instance option;
  ctx_notify : Name.t Queue.t;  (** recipients queued by require_recipient *)
  ctx_inline : Action.t Queue.t;  (** actions queued by send_inline *)
}

type tx_result = {
  tx_ok : bool;
  tx_error : string option;
  tx_actions_run : (Name.t * Name.t) list;
      (** (receiver, action) pairs that completed, in order *)
}

val create : ?fuel_per_action:int -> unit -> t
(** A bare chain; prefer {!Host.create_chain}, which installs the env host
    API. *)

val register_extension : t -> extension -> unit
val create_account : t -> Name.t -> account
val account : t -> Name.t -> account option
val is_account : t -> Name.t -> bool

val set_code : t -> Name.t -> Wasai_wasm.Ast.module_ -> Abi.t -> unit
(** Deploy a Wasm contract (validated first, as Nodeos does on setcode). *)

val set_native : t -> Name.t -> (context -> unit) -> Abi.t -> unit

val clear_code : t -> Name.t -> unit
(** Remove the contract, leaving the account (the "abandoned" state). *)

val set_executor : t -> Name.t -> (context -> unit) option -> unit
(** Install (or clear) an alternative execution tier for the account's
    deployed Wasm contract.  The executor replaces the interpreter path
    of [run_contract] for this account and must be observationally
    identical to it; {!set_code}/{!set_native}/{!clear_code} reset it so
    it can never outlive the module it was built from.  No-op on unknown
    accounts. *)

val console_output : t -> string
val advance_block : t -> unit

val push_transaction : t -> Action.transaction -> tx_result
(** Execute a transaction atomically: any assert/trap/exhaustion rolls
    back the database and any deferred transactions it scheduled. *)

val push_action : t -> Action.t -> tx_result

val run_deferred : t -> tx_result list
(** Run all queued deferred transactions; each is independent. *)
