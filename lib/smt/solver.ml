(** Constraint solving entry point.

    [check] decides a conjunction of width-1 constraints and produces a
    model (variable id → value).  Two tiers:

    1. a propagation quick-path that solves the very common
       "variable (or invertible 1-var term) equals constant" chains the
       complicated-verification contracts produce, without touching SAT;
    2. full bit-blasting + CDCL for everything else, under a deterministic
       conflict budget standing in for the paper's 3,000 ms Z3 cap. *)

type model = (int, int64) Hashtbl.t
(** expr variable id → value *)

type result =
  | Sat of model
  | Unsat
  | Unknown  (** budget exhausted *)

(* Atomic so concurrent fuzzing domains tally without losing increments. *)
type stats = {
  quick_solved : int Atomic.t;
  blasted : int Atomic.t;
  unknowns : int Atomic.t;
}

let stats =
  { quick_solved = Atomic.make 0; blasted = Atomic.make 0; unknowns = Atomic.make 0 }

(* ------------------------------------------------------------------ *)
(* Quick path                                                          *)
(* ------------------------------------------------------------------ *)

(* Try to rewrite [e == value] into an assignment of a single variable.
   Handles the invertible wrappers the calling convention and the popcount
   obfuscation produce around inputs. *)
let rec invert (e : Expr.t) (value : int64) : (Expr.var * int64) option =
  let open Expr in
  match e with
  | Var v -> Some (v, mask v.vwidth value)
  | Zext (_, inner) ->
      (* Invertible iff the value fits in the inner width. *)
      let wi = width_of inner in
      if mask wi value = value then invert inner value else None
  | Sext (w, inner) ->
      let wi = width_of inner in
      if mask w (to_signed wi (mask wi value)) = mask w value then
        invert inner (mask wi value)
      else None
  | Extract (hi, lo, inner) when lo = 0 && hi = width_of inner - 1 ->
      invert inner value
  | Binop (Add, Const (w, c), inner) -> invert inner (mask w (Int64.sub value c))
  | Binop (Xor, Const (_, c), inner) -> invert inner (Int64.logxor value c)
  | Binop (Sub, inner, Const (w, c)) -> invert inner (mask w (Int64.add value c))
  | _ -> None

(* One round of propagation: pick off constraints of the form
   [invertible == const]; substitute; repeat to fixpoint. *)
let quick_path (constraints : Expr.t list) :
    [ `Solved of model | `Contradiction | `Residual of Expr.t list * model ] =
  let model : model = Hashtbl.create 8 in
  let subst_known e =
    Expr.subst
      (fun v ->
        match Hashtbl.find_opt model v.Expr.vid with
        | Some value -> Some (Expr.const v.Expr.vwidth value)
        | None -> None)
      e
  in
  let rec loop (cs : Expr.t list) =
    let cs = List.map subst_known cs in
    if List.exists Expr.is_false cs then `Contradiction
    else begin
      let cs = List.filter (fun c -> not (Expr.is_true c)) cs in
      let progress = ref false in
      let residual =
        List.filter
          (fun c ->
            match c with
            | Expr.Cmp (Expr.Eq, lhs, Expr.Const (_, value))
            | Expr.Cmp (Expr.Eq, Expr.Const (_, value), lhs) -> (
                match invert lhs value with
                | Some (v, assigned) when not (Hashtbl.mem model v.Expr.vid) ->
                    Hashtbl.replace model v.Expr.vid assigned;
                    progress := true;
                    false
                | _ -> true)
            | _ -> true)
          cs
      in
      if residual = [] then `Solved model
      else if !progress then loop residual
      else `Residual (residual, model)
    end
  in
  loop constraints

(* ------------------------------------------------------------------ *)
(* Full check                                                          *)
(* ------------------------------------------------------------------ *)

let blast_check ?(conflict_budget = 50_000) (constraints : Expr.t list)
    (pre_model : model) : result =
  let ctx = Bitblast.create () in
  List.iter (Bitblast.assert_true ctx) constraints;
  Atomic.incr stats.blasted;
  match Sat.solve ~conflict_budget ctx.Bitblast.sat with
  | Sat.Unsat -> Unsat
  | Sat.Unknown ->
      Atomic.incr stats.unknowns;
      Unknown
  | Sat.Sat ->
      let model = Hashtbl.copy pre_model in
      (* Collect every variable mentioned in the constraints. *)
      let seen = Hashtbl.create 16 in
      List.iter
        (fun c ->
          Expr.iter_vars
            (fun v ->
              if not (Hashtbl.mem seen v.Expr.vid) then begin
                Hashtbl.replace seen v.Expr.vid ();
                Hashtbl.replace model v.Expr.vid (Bitblast.model_of_var ctx v)
              end)
            c)
        constraints;
      Sat model

(** Decide the conjunction of [constraints]. *)
let check ?(conflict_budget = 50_000) (constraints : Expr.t list) : result =
  (* Constant-fold through simplification first. *)
  let constraints = List.map (fun c -> Expr.subst (fun _ -> None) c) constraints in
  if List.exists Expr.is_false constraints then Unsat
  else
    match quick_path constraints with
    | `Solved model ->
        Atomic.incr stats.quick_solved;
        Sat model
    | `Contradiction -> Unsat
    | `Residual (residual, model) -> blast_check ~conflict_budget residual model

(** Verify a model against constraints (defence in depth for the solver:
    used by tests and by the engine before trusting a seed). *)
let validate_model (constraints : Expr.t list) (model : model) : bool =
  let env = Hashtbl.create 16 in
  Hashtbl.iter (fun k v -> Hashtbl.replace env k v) model;
  List.for_all
    (fun c ->
      (* Unassigned variables default to zero. *)
      Expr.iter_vars
        (fun v -> if not (Hashtbl.mem env v.Expr.vid) then Hashtbl.replace env v.Expr.vid 0L)
        c;
      match Expr.eval env c with 1L -> true | _ -> false)
    constraints
