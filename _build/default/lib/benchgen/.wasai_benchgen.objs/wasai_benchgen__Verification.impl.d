lib/benchgen/verification.ml: Array Contracts Int64 List Wasai_eosio Wasai_support Wasai_wasm
