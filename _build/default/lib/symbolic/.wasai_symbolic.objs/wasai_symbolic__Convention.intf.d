lib/symbolic/convention.mli: Memmodel Wasai_eosio Wasai_smt Wasai_wasm
