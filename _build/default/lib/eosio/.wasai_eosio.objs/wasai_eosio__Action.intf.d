lib/eosio/action.mli: Abi Name
