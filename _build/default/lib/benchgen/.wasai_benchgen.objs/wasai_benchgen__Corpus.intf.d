lib/benchgen/corpus.mli: Abi Contracts Wasai_eosio Wasai_wasm
