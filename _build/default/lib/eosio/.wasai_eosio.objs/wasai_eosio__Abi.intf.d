lib/eosio/abi.mli: Asset Buffer Name
