(** Execution traces.

    The instrumented contract calls hook imports in the [wasai] namespace
    while it runs; the collector receives a flat stream of events (a site
    announcement followed by its duplicated operands) and assembles it into
    structured records τ(i, p⃗) — the trace format of §3.1 of the paper.

    Only instrumented contracts import the hooks, so auxiliary contracts
    (eosio.token, attacker agents) never pollute the trace, exactly as the
    paper's contract-level instrumentation guarantees. *)

module Wasm = Wasai_wasm
module Values = Wasm.Values

(** Static description of one instrumented instruction site. *)
type site = {
  site_id : int;
  site_func : int;  (** absolute function index in the instrumented module *)
  site_instr : Wasm.Ast.instr;  (** post-remap instruction *)
}

(** Static metadata produced by the instrumenter (the analogue of Wasabi's
    static-info file). *)
type meta = {
  sites : site array;
  instrumented : Wasm.Ast.module_;
  original : Wasm.Ast.module_;
  hook_base : int;  (** first hook import index *)
  hook_count : int;
  orig_import_count : int;  (** function imports of the original module *)
}

let site_of (meta : meta) id = meta.sites.(id)

(** Name of an imported function in the instrumented module, e.g.
    "env.require_auth". *)
let import_name (meta : meta) idx : string option =
  Wasm.Ast.func_name_at meta.instrumented idx

(** Absolute index of an [env] import by name, if the contract imports it. *)
let find_env_import (meta : meta) (name : string) : int option =
  let rec go i = function
    | [] -> None
    | (imp : Wasm.Ast.import) :: rest -> (
        match imp.idesc with
        | Wasm.Ast.Func_import _ ->
            if imp.imp_module = "env" && imp.imp_name = name then Some i
            else go (i + 1) rest
        | _ -> go i rest)
  in
  go 0 meta.instrumented.Wasm.Ast.imports

(* ------------------------------------------------------------------ *)
(* Coverage signatures                                                 *)
(* ------------------------------------------------------------------ *)

(* FNV-1a 64 over the canonicalised (sorted, deduplicated) edge set,
   each edge fed as 8 little-endian bytes of the site id followed by 4
   little-endian bytes of the direction.  The same constants as
   Campaign.Shard's name hash, so the value is machine-portable: a
   corpus written on one host deduplicates against one written on
   another. *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let edge_signature (edges : (int * int32) list) : int64 =
  let edges = List.sort_uniq compare edges in
  let h = ref fnv_offset in
  let byte b =
    h := Int64.mul (Int64.logxor !h (Int64.of_int (b land 0xff))) fnv_prime
  in
  List.iter
    (fun (site, dir) ->
      for i = 0 to 7 do
        byte (site lsr (8 * i))
      done;
      let d = Int32.to_int dir in
      for i = 0 to 3 do
        byte (d asr (8 * i))
      done)
    edges;
  !h

(* ------------------------------------------------------------------ *)
(* Structured records                                                  *)
(* ------------------------------------------------------------------ *)

type record =
  | R_instr of { site : int; ops : Values.value list }
      (** an executed instruction with its duplicated operands *)
  | R_call_pre of { site : int; args : Values.value list }
  | R_call_post of { site : int; results : Values.value list }
  | R_func_begin of int  (** absolute function index *)
  | R_func_end of int

let record_site = function
  | R_instr { site; _ } | R_call_pre { site; _ } | R_call_post { site; _ } ->
      Some site
  | R_func_begin _ | R_func_end _ -> None

let string_of_record meta = function
  | R_instr { site; ops } ->
      Printf.sprintf "τ(%s, [%s])"
        (Wasm.Ast.mnemonic (site_of meta site).site_instr)
        (String.concat "; " (List.map Values.string_of_value ops))
  | R_call_pre { site; args } ->
      Printf.sprintf "call_pre@%d [%s]" site
        (String.concat "; " (List.map Values.string_of_value args))
  | R_call_post { site; results } ->
      Printf.sprintf "call_post@%d [%s]" site
        (String.concat "; " (List.map Values.string_of_value results))
  | R_func_begin f -> Printf.sprintf "function_begin %d" f
  | R_func_end f -> Printf.sprintf "function_end %d" f

(* ------------------------------------------------------------------ *)
(* Collector                                                           *)
(* ------------------------------------------------------------------ *)

(* Pending event being assembled from the flat hook stream. *)
type pending =
  | P_none
  | P_instr of int * Values.value list  (* reversed operand list *)
  | P_pre of int * Values.value list
  | P_post of int * Values.value list

type t = {
  mutable records : record list;  (** reversed *)
  mutable pending : pending;
  mutable enabled : bool;
  mutable count : int;
  mutable limit : int;  (** safety valve against pathological traces *)
}

let create ?(limit = 2_000_000) () =
  { records = []; pending = P_none; enabled = true; count = 0; limit }

let flush_pending c =
  (match c.pending with
   | P_none -> ()
   | P_instr (site, ops) ->
       c.records <- R_instr { site; ops = List.rev ops } :: c.records
   | P_pre (site, args) ->
       c.records <- R_call_pre { site; args = List.rev args } :: c.records
   | P_post (site, results) ->
       c.records <- R_call_post { site; results = List.rev results } :: c.records);
  c.pending <- P_none

let emit c r =
  if c.enabled && c.count < c.limit then begin
    flush_pending c;
    c.records <- r :: c.records;
    c.count <- c.count + 1
  end

let begin_instr c site =
  if c.enabled && c.count < c.limit then begin
    flush_pending c;
    c.pending <- P_instr (site, []);
    c.count <- c.count + 1
  end

let begin_call_pre c site =
  if c.enabled && c.count < c.limit then begin
    flush_pending c;
    c.pending <- P_pre (site, []);
    c.count <- c.count + 1
  end

let begin_call_post c site =
  if c.enabled && c.count < c.limit then begin
    flush_pending c;
    c.pending <- P_post (site, []);
    c.count <- c.count + 1
  end

let operand c (v : Values.value) =
  if c.enabled then
    match c.pending with
    | P_none -> ()  (* operand after limit cut-off: drop *)
    | P_instr (s, ops) -> c.pending <- P_instr (s, v :: ops)
    | P_pre (s, ops) -> c.pending <- P_pre (s, v :: ops)
    | P_post (s, ops) -> c.pending <- P_post (s, v :: ops)

let func_begin c f = emit c (R_func_begin f)
let func_end c f = emit c (R_func_end f)

(** Drain the collected trace (oldest first) and reset the collector —
    the paper's "redirect the traces to offline files once one EOSVM
    thread finishes". *)
let drain c : record list =
  flush_pending c;
  let r = List.rev c.records in
  c.records <- [];
  c.count <- 0;
  r

let reset c =
  c.records <- [];
  c.pending <- P_none;
  c.count <- 0
