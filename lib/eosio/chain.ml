(** Local blockchain: accounts, contract deployment, and the transaction
    execution machinery (notifications, inline actions with whole-
    transaction rollback, deferred transactions).

    This replaces Nodeos in the paper's setup.  Consensus, networking and
    signatures are irrelevant to every experiment and are not modelled;
    authorisation is checked against the action's declared actors. *)

module Wasm = Wasai_wasm
module Interp = Wasm.Interp

exception Assert_failed of string
(** [eosio_assert] failure: aborts and rolls back the transaction. *)

exception Eosio_exit
(** [eosio_exit]: terminates the current contract cleanly. *)

type contract_impl =
  | Wasm_contract of Wasm.Ast.module_
  | Native_contract of (context -> unit)

and account = {
  acc_name : Name.t;
  mutable acc_contract : contract_impl option;
  mutable acc_abi : Abi.t option;
  mutable acc_executor : (context -> unit) option;
      (** alternative execution tier for a deployed Wasm contract (e.g. a
          closure-compiled module); must be observationally identical to
          the interpreter path.  Cleared whenever the code changes. *)
}

and t = {
  db : Database.t;
  accounts : (Name.t, account) Hashtbl.t;
  mutable block_num : int32;
  mutable block_prefix : int32;
  mutable head_time_us : int64;
  mutable fuel_per_action : int;
  mutable deferred : Action.transaction list;
  mutable extensions : extension list;
      (** extra import namespaces (instrumentation hooks) *)
  mutable console : Buffer.t;
}

and extension = context -> string -> string -> Interp.extern option

(** Per-action execution context handed to host functions and native
    contracts. *)
and context = {
  chain : t;
  ctx_receiver : Name.t;  (** the notified/executing account *)
  ctx_code : Name.t;  (** the account the action was sent to *)
  ctx_action : Action.t;
  mutable ctx_inst : Interp.instance option;
  ctx_notify : Name.t Queue.t;  (** recipients queued by require_recipient *)
  ctx_inline : Action.t Queue.t;  (** actions queued by send_inline *)
}

type tx_result = {
  tx_ok : bool;
  tx_error : string option;
  tx_actions_run : (Name.t * Name.t) list;
      (** (receiver, action) pairs that completed, in order *)
}

let create ?(fuel_per_action = 5_000_000) () =
  {
    db = Database.create ();
    accounts = Hashtbl.create 32;
    block_num = 1l;
    block_prefix = 0x5eed_f00dl;
    head_time_us = 1_600_000_000_000_000L;
    fuel_per_action;
    deferred = [];
    extensions = [];
    console = Buffer.create 256;
  }

let register_extension chain ext = chain.extensions <- ext :: chain.extensions

let create_account chain name =
  match Hashtbl.find_opt chain.accounts name with
  | Some a -> a
  | None ->
      let a =
        {
          acc_name = name;
          acc_contract = None;
          acc_abi = None;
          acc_executor = None;
        }
      in
      Hashtbl.replace chain.accounts name a;
      a

let account chain name = Hashtbl.find_opt chain.accounts name
let is_account chain name = Hashtbl.mem chain.accounts name

(** Deploy a Wasm contract (validated first, as Nodeos does on setcode). *)
let set_code chain name (m : Wasm.Ast.module_) (abi : Abi.t) =
  Wasm.Validate.check_module m;
  let a = create_account chain name in
  a.acc_contract <- Some (Wasm_contract m);
  a.acc_abi <- Some abi;
  a.acc_executor <- None

let set_native chain name (f : context -> unit) (abi : Abi.t) =
  let a = create_account chain name in
  a.acc_contract <- Some (Native_contract f);
  a.acc_abi <- Some abi;
  a.acc_executor <- None

(** Install (or clear) an alternative execution tier for the account's
    deployed Wasm contract.  The executor receives the action context and
    must behave exactly like the interpreter path in [run_contract];
    [set_code]/[clear_code] reset it so it can never outlive the module
    it was built from. *)
let set_executor chain name (exec : (context -> unit) option) =
  match account chain name with
  | Some a -> a.acc_executor <- exec
  | None -> ()

(** Remove the contract, leaving the account (EOSIO's "abandoned" state:
    the code is replaced by an empty file). *)
let clear_code chain name =
  match account chain name with
  | Some a ->
      a.acc_contract <- None;
      a.acc_abi <- None;
      a.acc_executor <- None
  | None -> ()

let console_output chain = Buffer.contents chain.console

(* ------------------------------------------------------------------ *)
(* Action execution                                                    *)
(* ------------------------------------------------------------------ *)

let run_contract (ctx : context) =
  let acct = account ctx.chain ctx.ctx_receiver in
  match acct with
  | None | Some { acc_contract = None; _ } ->
      (* No code: a plain account receiving an action or notification is a
         no-op (tokens still move because the token contract's own DB was
         already updated). *)
      ()
  | Some { acc_contract = Some (Native_contract f); _ } -> f ctx
  | Some { acc_contract = Some (Wasm_contract _); acc_executor = Some exec; _ }
    ->
      exec ctx
  | Some { acc_contract = Some (Wasm_contract m); _ } ->
      (* The env host API and the instrumentation hooks are both installed
         as extensions; see [Host.install]. *)
      let resolver mod_name item =
        List.find_map (fun ext -> ext ctx mod_name item) ctx.chain.extensions
      in
      let inst =
        Interp.instantiate ~fuel:ctx.chain.fuel_per_action resolver m
      in
      ctx.ctx_inst <- Some inst;
      (try
         ignore
           (Interp.invoke_export inst "apply"
              [
                Wasm.Values.I64 ctx.ctx_receiver;
                Wasm.Values.I64 ctx.ctx_code;
                Wasm.Values.I64 ctx.ctx_action.Action.act_name;
              ])
       with Eosio_exit -> ())

(** Execute one action: the receiver's contract first, then every queued
    notification (with [code] preserved, which is what makes Fake Notif
    possible).  Returns inline actions queued anywhere in the chain of
    contexts, plus the (receiver, action) pairs that ran. *)
let execute_action chain (act : Action.t) :
    Action.t list * (Name.t * Name.t) list =
  let inline = ref [] in
  let ran = ref [] in
  let notified = Hashtbl.create 8 in
  let queue = Queue.create () in
  Queue.add act.Action.act_account queue;
  Hashtbl.replace notified act.Action.act_account ();
  while not (Queue.is_empty queue) do
    let receiver = Queue.pop queue in
    let ctx =
      {
        chain;
        ctx_receiver = receiver;
        ctx_code = act.Action.act_account;
        ctx_action = act;
        ctx_inst = None;
        ctx_notify = Queue.create ();
        ctx_inline = Queue.create ();
      }
    in
    run_contract ctx;
    ran := (receiver, act.Action.act_name) :: !ran;
    Queue.iter
      (fun n ->
        if not (Hashtbl.mem notified n) then begin
          Hashtbl.replace notified n ();
          Queue.add n queue
        end)
      ctx.ctx_notify;
    Queue.iter (fun a -> inline := a :: !inline) ctx.ctx_inline
  done;
  (List.rev !inline, List.rev !ran)

let advance_block chain =
  chain.block_num <- Int32.add chain.block_num 1l;
  chain.block_prefix <-
    Int64.to_int32
      (Wasai_support.Rand.next_u64
         (Wasai_support.Rand.create (Int64.of_int32 chain.block_num)));
  chain.head_time_us <- Int64.add chain.head_time_us 500_000L

(** Execute a transaction atomically: any assert/trap/exhaustion rolls the
    whole database back.  Deferred transactions spawned by the contract are
    queued on the chain, not executed here. *)
let push_transaction chain (tx : Action.transaction) : tx_result =
  advance_block chain;
  let snap = Database.snapshot chain.db in
  let deferred_snap = chain.deferred in
  let ran = ref [] in
  (* Inline actions expand depth-first, as in Nodeos: an action's inline
     children run before its siblings. *)
  let queue = ref tx.Action.tx_actions in
  match
    while !queue <> [] do
      match !queue with
      | [] -> ()
      | act :: rest ->
          queue := rest;
          let inline, executed = execute_action chain act in
          ran := !ran @ executed;
          queue := inline @ !queue
    done
  with
  | () -> { tx_ok = true; tx_error = None; tx_actions_run = !ran }
  | exception e ->
      Database.restore chain.db snap;
      (* Deferred transactions scheduled inside the failed transaction
         are rolled back with it. *)
      chain.deferred <- deferred_snap;
      let msg =
        match e with
        | Assert_failed m -> Printf.sprintf "eosio_assert: %s" m
        | Wasm.Values.Trap m -> Printf.sprintf "trap: %s" m
        | Interp.Exhaustion m -> Printf.sprintf "exhaustion: %s" m
        | Abi.Deserialize_error m -> Printf.sprintf "deserialize: %s" m
        | e -> raise e
      in
      { tx_ok = false; tx_error = Some msg; tx_actions_run = !ran }

(** Execute one action as its own transaction. *)
let push_action chain (act : Action.t) : tx_result =
  push_transaction chain { Action.tx_actions = [ act ] }

(** Run all queued deferred transactions; each is independent (a failed
    deferred transaction does not affect the others — that independence is
    precisely the Rollback patch in the paper's Listing 4). *)
let run_deferred chain : tx_result list =
  let txs = List.rev chain.deferred in
  chain.deferred <- [];
  List.map (push_transaction chain) txs
