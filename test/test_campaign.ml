(* Tests for the campaign orchestrator: latency histogram, work queue,
   journal round-trip and strictness, multi-domain/serial verdict parity,
   and interrupt/resume equivalence. *)

module Core = Wasai_core
module BG = Wasai_benchgen
module Campaign = Wasai_campaign
module Metrics = Wasai_support.Metrics
open Wasai_eosio

(* ------------------------------------------------------------------ *)
(* Metrics.Histogram                                                    *)
(* ------------------------------------------------------------------ *)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let test_hist_basic () =
  let h = Metrics.Histogram.create () in
  Alcotest.(check (float 0.0)) "empty percentile" 0.0
    (Metrics.Histogram.percentile h 99.0);
  for _ = 1 to 50 do Metrics.Histogram.add h 0.001 done;
  for _ = 1 to 50 do Metrics.Histogram.add h 0.1 done;
  Alcotest.(check int) "count" 100 (Metrics.Histogram.count h);
  Alcotest.(check bool) "mean between modes" true
    (let m = Metrics.Histogram.mean h in
     m > 0.04 && m < 0.06);
  Alcotest.(check bool) "p50 in the low bucket" true
    (Metrics.Histogram.percentile h 50.0 <= 0.002);
  Alcotest.(check bool) "p90 bounds the high mode" true
    (let p = Metrics.Histogram.percentile h 90.0 in
     p >= 0.1 && p <= 0.11);
  Alcotest.(check bool) "p100 capped at max" true
    (Metrics.Histogram.percentile h 100.0 <= 0.1)

let test_hist_merge () =
  let a = Metrics.Histogram.create () and b = Metrics.Histogram.create () in
  List.iter (Metrics.Histogram.add a) [ 0.001; 0.002; 0.003 ];
  List.iter (Metrics.Histogram.add b) [ 0.2; 0.3 ];
  let m = Metrics.Histogram.merge a b in
  Alcotest.(check int) "merged count" 5 (Metrics.Histogram.count m);
  Alcotest.(check bool) "merged p99 from b" true
    (Metrics.Histogram.percentile m 99.0 >= 0.2);
  Alcotest.(check bool) "merge leaves inputs alone" true
    (Metrics.Histogram.count a = 3 && Metrics.Histogram.count b = 2);
  Alcotest.(check bool) "to_string mentions count" true
    (let s = Metrics.Histogram.to_string m in
     String.length s > 0
     && contains ~sub:"n=5" s)

(* ------------------------------------------------------------------ *)
(* Work queue                                                           *)
(* ------------------------------------------------------------------ *)

let test_queue_fifo_and_close () =
  let q = Campaign.Work_queue.create () in
  List.iter (Campaign.Work_queue.push q) [ 1; 2; 3 ];
  Campaign.Work_queue.close q;
  Alcotest.(check (list int)) "fifo drain" [ 1; 2; 3 ]
    (List.filter_map (fun _ -> Campaign.Work_queue.take q) [ (); (); () ]);
  Alcotest.(check bool) "drained + closed" true (Campaign.Work_queue.take q = None);
  Alcotest.check_raises "push after close"
    (Invalid_argument "Work_queue.push: closed") (fun () ->
      Campaign.Work_queue.push q 4)

let test_queue_parallel_drain () =
  let q = Campaign.Work_queue.create () in
  let n = 200 in
  for i = 1 to n do Campaign.Work_queue.push q i done;
  Campaign.Work_queue.close q;
  let drain () =
    let rec go acc = match Campaign.Work_queue.take q with
      | Some x -> go (x + acc)
      | None -> acc
    in
    go 0
  in
  let others = List.init 3 (fun _ -> Domain.spawn drain) in
  let total = List.fold_left (fun acc d -> acc + Domain.join d) (drain ()) others in
  Alcotest.(check int) "every item taken exactly once" (n * (n + 1) / 2) total

(* ------------------------------------------------------------------ *)
(* Journal                                                              *)
(* ------------------------------------------------------------------ *)

let sample_entry =
  {
    Campaign.Journal.je_name = "alice";
    je_flags =
      List.map
        (fun f -> (f, f = Core.Scanner.Fake_eos || f = Core.Scanner.Rollback))
        Core.Scanner.all_flags;
    je_branches = 42;
    je_rounds = 12;
    je_seeds_total = 30;
    je_adaptive_seeds = 4;
    je_transactions = 99;
    je_solver_sat = 7;
    je_imprecise = 1;
    je_elapsed = 1.5;
    je_solver =
      {
        Wasai_smt.Solver.st_quick = 21;
        st_blasted = 6;
        st_unknown = 2;
        st_cache_hits = 15;
        st_cache_misses = 29;
      };
  }

let test_journal_roundtrip () =
  let line = Campaign.Journal.line_of_entry sample_entry in
  match Campaign.Journal.entry_of_line line with
  | Ok e ->
      Alcotest.(check string) "name" "alice" e.Campaign.Journal.je_name;
      Alcotest.(check bool) "flags" true
        (e.Campaign.Journal.je_flags = sample_entry.Campaign.Journal.je_flags);
      Alcotest.(check int) "branches" 42 e.Campaign.Journal.je_branches;
      Alcotest.(check (float 1e-6)) "elapsed" 1.5 e.Campaign.Journal.je_elapsed;
      Alcotest.(check bool) "solver counters" true
        (e.Campaign.Journal.je_solver
         = sample_entry.Campaign.Journal.je_solver)
  | Error e -> Alcotest.fail ("roundtrip failed: " ^ e)

(* Old journals predate the solver counters (11-field v1 lines); resume
   must still accept them, reading the counters as zero. *)
let test_journal_v1_compat () =
  let v2 = Campaign.Journal.line_of_entry sample_entry in
  let v1 =
    match List.rev (String.split_on_char '\t' v2) with
    | _solver :: rest -> String.concat "\t" (List.rev rest)
    | [] -> assert false
  in
  match Campaign.Journal.entry_of_line v1 with
  | Ok e ->
      Alcotest.(check string) "name" "alice" e.Campaign.Journal.je_name;
      Alcotest.(check int) "branches" 42 e.Campaign.Journal.je_branches;
      Alcotest.(check bool) "counters read as zero" true
        (e.Campaign.Journal.je_solver = Wasai_smt.Solver.stats_zero)
  | Error e -> Alcotest.fail ("v1 line rejected: " ^ e)

let test_journal_strict () =
  let reject line reason_fragment =
    match Campaign.Journal.entry_of_line line with
    | Ok _ -> Alcotest.fail ("accepted malformed line: " ^ line)
    | Error reason ->
        Alcotest.(check bool)
          (Printf.sprintf "reason %S mentions %S" reason reason_fragment)
          true
            (contains ~sub:reason_fragment reason)
  in
  reject "garbage" "11 or 12 tab-separated fields";
  reject
    (Campaign.Journal.line_of_entry sample_entry ^ "\textra")
    "11 or 12 tab-separated fields";
  (* A line torn mid-write by a crash. *)
  let full = Campaign.Journal.line_of_entry sample_entry in
  reject (String.sub full 0 (String.length full - 20)) "field";
  reject (String.concat "\t" (String.split_on_char '\t' full |> List.map (fun f ->
      if f = "tx=99" then "tx=banana" else f)))
    "tx";
  (* The v2 solver field is parsed as strictly as the rest. *)
  let swap_solver replacement =
    String.concat "\t"
      (String.split_on_char '\t' full
      |> List.map (fun f ->
             if String.length f > 7 && String.sub f 0 7 = "solver=" then
               replacement
             else f))
  in
  reject (swap_solver "solver=q:21,b:6,u:2,h:15") "5 counters";
  reject (swap_solver "solver=q:21,b:6,u:2,h:15,m:oops") "bad counters";
  reject (swap_solver "solver=q:21,b:6,u:2,m:29,h:15") "bad counters"

let test_journal_load_malformed () =
  let path = Filename.temp_file "wasai-test" ".journal" in
  let oc = open_out path in
  output_string oc (Campaign.Journal.line_of_entry sample_entry ^ "\n");
  output_string oc "this is not a journal line\n";
  close_out oc;
  (match Campaign.Journal.load path with
   | _ -> Alcotest.fail "corrupt journal accepted"
   | exception Campaign.Journal.Malformed msg ->
       Alcotest.(check bool)
         (Printf.sprintf "error %S names the line" msg)
         true
         (contains ~sub:":2:" msg));
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Campaign runs over a generated corpus                                *)
(* ------------------------------------------------------------------ *)

let test_targets ~count =
  List.mapi
    (fun i (s : BG.Corpus.sample) ->
      let account =
        Name.of_string (Printf.sprintf "trgt%c" (Char.chr (Char.code 'a' + i)))
      in
      {
        Campaign.Campaign.sp_name = Name.to_string account;
        sp_load =
          (fun () ->
            {
              Core.Engine.tgt_account = account;
              tgt_module = s.BG.Corpus.smp_module;
              tgt_abi = s.BG.Corpus.smp_abi;
            });
      })
    (BG.Corpus.coverage_set ~count ())

let campaign_config ~jobs =
  {
    Campaign.Campaign.default_config with
    Campaign.Campaign.cc_jobs = jobs;
    cc_engine = { Core.Engine.default_config with Core.Engine.cfg_rounds = 6 };
  }

let flag_sets (r : Campaign.Campaign.report) =
  List.map
    (fun (e : Campaign.Journal.entry) ->
      ( e.Campaign.Journal.je_name,
        List.filter_map (fun (f, b) -> if b then Some f else None)
          e.Campaign.Journal.je_flags ))
    r.Campaign.Campaign.cr_results

let test_parallel_parity () =
  let targets = test_targets ~count:8 in
  let serial = Campaign.Campaign.run (campaign_config ~jobs:1) targets in
  let parallel = Campaign.Campaign.run (campaign_config ~jobs:4) targets in
  Alcotest.(check int) "all targets fuzzed" 8
    (List.length parallel.Campaign.Campaign.cr_results);
  Alcotest.(check bool) "per-contract flag sets identical" true
    (flag_sets serial = flag_sets parallel);
  Alcotest.(check string) "canonical verdicts byte-identical"
    (Campaign.Campaign.verdicts_text serial)
    (Campaign.Campaign.verdicts_text parallel)

let test_resume () =
  let targets = test_targets ~count:8 in
  let uninterrupted = Campaign.Campaign.run (campaign_config ~jobs:2) targets in
  let journal = Filename.temp_file "wasai-test" ".journal" in
  Sys.remove journal;
  (* "Kill" the campaign after 5 targets by budget, then resume. *)
  let interrupted =
    Campaign.Campaign.run
      {
        (campaign_config ~jobs:2) with
        Campaign.Campaign.cc_journal = Some journal;
        cc_max_targets = Some 5;
      }
      targets
  in
  Alcotest.(check int) "interrupted at 5" 5
    (List.length interrupted.Campaign.Campaign.cr_results);
  let resumed =
    Campaign.Campaign.run
      {
        (campaign_config ~jobs:2) with
        Campaign.Campaign.cc_journal = Some journal;
        cc_resume = true;
      }
      targets
  in
  Alcotest.(check int) "resume skips the journaled 5" 5
    resumed.Campaign.Campaign.cr_skipped;
  Alcotest.(check int) "resume completes the remaining 3" 3
    (List.length resumed.Campaign.Campaign.cr_results
     - resumed.Campaign.Campaign.cr_skipped);
  Alcotest.(check string) "merged report equals the uninterrupted run"
    (Campaign.Campaign.verdicts_text uninterrupted)
    (Campaign.Campaign.verdicts_text resumed);
  (* A journal appended to by a non-resume rerun holds duplicate lines per
     name; resume must collapse them, not double-count. *)
  let _rerun_without_resume =
    Campaign.Campaign.run
      {
        (campaign_config ~jobs:1) with
        Campaign.Campaign.cc_journal = Some journal;
      }
      targets
  in
  let resumed_again =
    Campaign.Campaign.run
      {
        (campaign_config ~jobs:1) with
        Campaign.Campaign.cc_journal = Some journal;
        cc_resume = true;
      }
      targets
  in
  Alcotest.(check int) "duplicate journal lines collapse on resume" 8
    (List.length resumed_again.Campaign.Campaign.cr_results);
  Alcotest.(check string) "deduped resume still equals the uninterrupted run"
    (Campaign.Campaign.verdicts_text uninterrupted)
    (Campaign.Campaign.verdicts_text resumed_again);
  Sys.remove journal

let test_resume_rejects_corrupt_journal () =
  let targets = test_targets ~count:2 in
  let journal = Filename.temp_file "wasai-test" ".journal" in
  let oc = open_out journal in
  output_string oc "corrupted by a crash\n";
  close_out oc;
  (match
     Campaign.Campaign.run
       {
         (campaign_config ~jobs:1) with
         Campaign.Campaign.cc_journal = Some journal;
         cc_resume = true;
       }
       targets
   with
   | _ -> Alcotest.fail "campaign resumed from a corrupt journal"
   | exception Campaign.Journal.Malformed _ -> ());
  Sys.remove journal

let test_duplicate_names_rejected () =
  let t = List.hd (test_targets ~count:1) in
  match Campaign.Campaign.run (campaign_config ~jobs:1) [ t; t ] with
  | _ -> Alcotest.fail "duplicate target names accepted"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Discovery                                                            *)
(* ------------------------------------------------------------------ *)

let test_account_of_filename () =
  let n s = Name.to_string (Campaign.Discover.account_of_filename s) in
  Alcotest.(check string) "plain" "lottery" (n "lottery.wasm");
  Alcotest.(check string) "digits and underscores map deterministically"
    (n "Contract_07.wasm") (n "contract.og.wat");
  Alcotest.(check bool) "truncated to 12" true
    (String.length (n "averyveryverylongcontractname.wasm") = 12)

let () =
  Alcotest.run "wasai_campaign"
    [
      ( "histogram",
        [
          Alcotest.test_case "basic percentiles" `Quick test_hist_basic;
          Alcotest.test_case "merge" `Quick test_hist_merge;
        ] );
      ( "work_queue",
        [
          Alcotest.test_case "fifo and close" `Quick test_queue_fifo_and_close;
          Alcotest.test_case "parallel drain" `Quick test_queue_parallel_drain;
        ] );
      ( "journal",
        [
          Alcotest.test_case "roundtrip" `Quick test_journal_roundtrip;
          Alcotest.test_case "v1 lines still parse" `Quick
            test_journal_v1_compat;
          Alcotest.test_case "strict parse" `Quick test_journal_strict;
          Alcotest.test_case "load rejects malformed" `Quick
            test_journal_load_malformed;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "parallel/serial parity" `Quick test_parallel_parity;
          Alcotest.test_case "interrupt and resume" `Quick test_resume;
          Alcotest.test_case "corrupt journal rejected" `Quick
            test_resume_rejects_corrupt_journal;
          Alcotest.test_case "duplicate names rejected" `Quick
            test_duplicate_names_rejected;
        ] );
      ( "discover",
        [
          Alcotest.test_case "account derivation" `Quick test_account_of_filename;
        ] );
    ]
