(* Differential tests of the closure-compiled execution tier against the
   interpreter: the Exec_backend determinism contract says the backend
   choice must be invisible in every observable — verdicts, coverage,
   trace tapes, journal lines — and that fallback/fuel behaviour matches
   the interpreter exactly. *)

module Wasm = Wasai_wasm
module Wasabi = Wasai_wasabi
module Core = Wasai_core
module BG = Wasai_benchgen
module Campaign = Wasai_campaign
open Wasai_eosio

let target_of_sample (s : BG.Corpus.sample) : Core.Engine.target =
  {
    Core.Engine.tgt_account = s.BG.Corpus.smp_spec.BG.Contracts.sp_account;
    tgt_module = s.BG.Corpus.smp_module;
    tgt_abi = s.BG.Corpus.smp_abi;
  }

(* Every benchgen corpus contract, legacy ground truth plus the
   related-work extension classes, at suite-friendly scale. *)
let corpus_samples () =
  BG.Corpus.ground_truth ~scale:100 () @ BG.Corpus.extension ~scale:10 ()

let sample_name (s : BG.Corpus.sample) =
  Name.to_string s.BG.Corpus.smp_spec.BG.Contracts.sp_account

(* ------------------------------------------------------------------ *)
(* Outcome / journal-line parity over the full corpus                   *)
(* ------------------------------------------------------------------ *)

(* Everything deterministic the engine reports, flattened to text so a
   mismatch diffs legibly.  The stamped v4 journal line covers flags,
   counters, solver stats and exploit payloads; the rest (coverage
   signatures, timeline shape, custom verdicts) is appended. *)
let outcome_fingerprint ~name ~rounds ~seed (o : Core.Engine.outcome) =
  let open Core.Engine in
  let stamp =
    {
      Campaign.Journal.js_shard = Campaign.Shard.whole;
      js_seed = seed;
      js_rounds = rounds;
    }
  in
  let entry = Campaign.Journal.of_outcome ~name ~elapsed:0. ~stamp o in
  String.concat "\n"
    (Campaign.Journal.line_of_entry entry
     :: Printf.sprintf "verdict_round=%d truncated=%d" o.out_verdict_round
          o.out_truncated
     :: List.map
          (fun (nm, v) -> Printf.sprintf "custom %s=%b" nm v)
          o.out_custom
    @ List.map
        (fun (r, _, b) -> Printf.sprintf "timeline %d:%d" r b)
        o.out_timeline
    @ List.map
        (fun i ->
          Printf.sprintf "interesting r%d %s sig=%Lx new=%d cover=%s"
            i.is_round
            (Name.to_string i.is_action)
            i.is_signature i.is_new_edges
            (String.concat ","
               (List.map
                  (fun (site, dir) -> Printf.sprintf "%d.%ld" site dir)
                  i.is_cover)))
        o.out_interesting)

let test_corpus_outcome_parity () =
  let rounds = 6 in
  List.iter
    (fun s ->
      let name = sample_name s in
      let seed = Int64.of_int s.BG.Corpus.smp_id in
      let run backend =
        Core.Engine.fuzz
          ~cfg:(Core.Engine.make_config ~rounds ~rng_seed:seed ~backend ())
          (target_of_sample s)
      in
      let interp = run Core.Exec_backend.Interp in
      let compiled = run Core.Exec_backend.Compiled in
      Alcotest.(check string)
        (Printf.sprintf "outcome parity %s" name)
        (outcome_fingerprint ~name ~rounds ~seed interp)
        (outcome_fingerprint ~name ~rounds ~seed compiled))
    (corpus_samples ())

(* ------------------------------------------------------------------ *)
(* Per-payload trace-tape parity                                        *)
(* ------------------------------------------------------------------ *)

let kind_char = function
  | Wasabi.Trace.Buffer.K_instr -> 'i'
  | K_call_pre -> 'c'
  | K_call_post -> 'p'
  | K_func_begin -> 'b'
  | K_func_end -> 'e'

let value_token v =
  let tag =
    match v with
    | Wasm.Values.I32 _ -> 'w'
    | I64 _ -> 'd'
    | F32 _ -> 'f'
    | F64 _ -> 'g'
  in
  Printf.sprintf "%c%Lx" tag (Wasm.Values.raw_bits v)

(* Snapshot of the event tape, rendered byte-comparably: kind, label and
   the raw bits plus width tag of every operand. *)
let tape (b : Wasabi.Trace.Buffer.t) =
  let events =
    List.init (Wasabi.Trace.Buffer.length b) (fun i ->
        Printf.sprintf "%c%d:%s"
          (kind_char (Wasabi.Trace.Buffer.kind b i))
          (Wasabi.Trace.Buffer.label b i)
          (String.concat ","
             (List.map value_token (Wasabi.Trace.Buffer.ops b i))))
  in
  Printf.sprintf "truncated=%b" (Wasabi.Trace.Buffer.truncated b) :: events

let result_string (r : Chain.tx_result) =
  Printf.sprintf "%b:%s:%s" r.Chain.tx_ok
    (Option.value ~default:"-" r.Chain.tx_error)
    (String.concat ","
       (List.map
          (fun (rcv, act) -> Name.to_string rcv ^ "/" ^ Name.to_string act)
          r.Chain.tx_actions_run))

let test_corpus_tape_parity () =
  let channels =
    Core.Scanner.[ Ch_genuine; Ch_direct; Ch_fake_token; Ch_fake_notif ]
  in
  List.iter
    (fun s ->
      let name = sample_name s in
      let mk backend =
        Core.Engine.setup
          (Core.Engine.make_config ~rounds:1 ~backend ())
          (target_of_sample s)
      in
      let si = mk Core.Exec_backend.Interp in
      let sc = mk Core.Exec_backend.Compiled in
      (* Identical seed sequence for both sessions: the generator draws
         from its own RNG, not session state. *)
      let rng =
        Wasai_support.Rand.create (Int64.of_int (7919 + s.BG.Corpus.smp_id))
      in
      let seeds =
        List.map
          (Core.Seed.random rng ~identities:si.Core.Engine.identities)
          s.BG.Corpus.smp_abi.Abi.abi_actions
      in
      List.iter
        (fun seed ->
          List.iter
            (fun ch ->
              let label =
                Printf.sprintf "%s %s via %s" name
                  (Name.to_string seed.Core.Seed.sd_action)
                  (Core.Scanner.string_of_channel ch)
              in
              let exi = Core.Engine.run_one si seed ch in
              (* [ex_trace] aliases the collector: snapshot before the
                 session runs anything else. *)
              let ti = tape exi.Core.Engine.ex_trace in
              let ri = result_string exi.Core.Engine.ex_result in
              let exc = Core.Engine.run_one sc seed ch in
              Alcotest.(check string)
                (label ^ " result") ri
                (result_string exc.Core.Engine.ex_result);
              Alcotest.(check (list string))
                (label ^ " tape") ti
                (tape exc.Core.Engine.ex_trace))
            channels)
        seeds)
    (corpus_samples ())

(* ------------------------------------------------------------------ *)
(* Fallback-boundary and fuel-exhaustion parity                         *)
(* ------------------------------------------------------------------ *)

(* A module exercising the compiled tier's control shapes: recursion
   (calls across the fallback boundary when [exclude] splits the
   functions), a loop with br_if, and trapping division. *)
let boundary_module () =
  let open Wasm in
  let b = Builder.create () in
  let open Builder.I in
  let fact = Builder.declare_func b (Types.func_type [ I64 ] ~results:[ I64 ]) in
  Builder.set_body b fact
    [
      local_get 0;
      i64 2L;
      i64_lt_s;
      if_ ~result:Types.I64
        [ i64 1L ]
        [ local_get 0; local_get 0; i64 1L; i64_sub; call fact; i64_mul ];
    ];
  let spin =
    Builder.add_func b
      (Types.func_type [ I32 ] ~results:[ I32 ])
      ~locals:[ Types.I32 ]
      [
        block
          [
            loop
              [
                local_get 0;
                i32_eqz;
                br_if 1;
                local_get 0;
                i32 1;
                i32_sub;
                local_set 0;
                local_get 1;
                i32 3;
                i32_add;
                local_set 1;
                br 0;
              ];
          ];
        local_get 1;
      ]
  in
  let crash =
    Builder.add_func b
      (Types.func_type [ I32 ] ~results:[ I32 ])
      [ i32 7; local_get 0; i32_div_u ]
  in
  Builder.export_func b "fact" fact;
  Builder.export_func b "spin" spin;
  Builder.export_func b "crash" crash;
  let m = Builder.build b in
  Validate.check_module m;
  m

let no_imports : Wasm.Interp.resolver = fun _ _ -> None

(* Result-or-exception of one invocation, rendered comparably; the
   contract requires identical trap/exhaustion messages. *)
let invocation f =
  match f () with
  | vs -> "ok:" ^ String.concat "," (List.map value_token vs)
  | exception Wasm.Interp.Exhaustion m -> "exhaustion:" ^ m
  | exception Wasm.Values.Trap m -> "trap:" ^ m

let test_fallback_boundary () =
  let m = boundary_module () in
  let full = Wasm.Compile.prepare m in
  let split =
    (* Veto loops: [spin] falls back to the interpreter while [fact] and
       [crash] stay compiled — a genuine mixed-tier module. *)
    Wasm.Compile.prepare
      ~exclude:(fun i -> match i with Wasm.Ast.Loop _ -> true | _ -> false)
      m
  in
  let none = Wasm.Compile.prepare ~exclude:(fun _ -> true) m in
  Alcotest.(check (pair int int))
    "all compiled" (3, 0)
    (Wasm.Compile.function_counts full);
  Alcotest.(check (pair int int))
    "loop excluded" (2, 1)
    (Wasm.Compile.function_counts split);
  Alcotest.(check (pair int int))
    "all fallback" (0, 3)
    (Wasm.Compile.function_counts none);
  let check_export name args =
    let reference =
      let inst = Wasm.Interp.instantiate no_imports m in
      invocation (fun () -> Wasm.Interp.invoke_export inst name args)
    in
    List.iter
      (fun (tier, prepared) ->
        let s = Wasm.Compile.instantiate prepared no_imports in
        Alcotest.(check string)
          (Printf.sprintf "%s %s" name tier)
          reference
          (invocation (fun () -> Wasm.Compile.invoke_export s name args)))
      [ ("compiled", full); ("split", split); ("fallback", none) ]
  in
  List.iter
    (fun v -> check_export "fact" [ Wasm.Values.I64 v ])
    [ 0L; 1L; 5L; 12L ];
  List.iter
    (fun v -> check_export "spin" [ Wasm.Values.I32 v ])
    [ 0l; 1l; 17l ];
  List.iter
    (fun v -> check_export "crash" [ Wasm.Values.I32 v ])
    [ 3l; 0l ];
  check_export "missing" []

let test_fuel_parity () =
  let m = boundary_module () in
  let full = Wasm.Compile.prepare m in
  let split =
    Wasm.Compile.prepare
      ~exclude:(fun i -> match i with Wasm.Ast.Loop _ -> true | _ -> false)
      m
  in
  let calls = [ ("fact", Wasm.Values.I64 6L); ("spin", Wasm.Values.I32 9l) ] in
  for fuel = 0 to 80 do
    List.iter
      (fun (name, arg) ->
        let reference =
          let inst = Wasm.Interp.instantiate ~fuel no_imports m in
          invocation (fun () -> Wasm.Interp.invoke_export inst name [ arg ])
        in
        List.iter
          (fun (tier, prepared) ->
            let s = Wasm.Compile.instantiate ~fuel prepared no_imports in
            Alcotest.(check string)
              (Printf.sprintf "%s fuel=%d %s" name fuel tier)
              reference
              (invocation (fun () -> Wasm.Compile.invoke_export s name [ arg ])))
          [ ("compiled", full); ("split", split) ])
      calls
  done

(* ------------------------------------------------------------------ *)
(* Journal backend header                                               *)
(* ------------------------------------------------------------------ *)

let test_header_round_trip () =
  List.iter
    (fun backend ->
      List.iter
        (fun telemetry ->
          let h =
            { Campaign.Journal.jh_backend = backend; jh_telemetry = telemetry }
          in
          match Campaign.Journal.(header_of_line (line_of_header h)) with
          | Ok h' ->
              Alcotest.(check string)
                "round trip"
                (Core.Exec_backend.to_string backend)
                (Core.Exec_backend.to_string h'.Campaign.Journal.jh_backend);
              Alcotest.(check bool)
                "telemetry round trip" telemetry
                h'.Campaign.Journal.jh_telemetry
          | Error e -> Alcotest.failf "header rejected: %s" e)
        [ false; true ])
    Core.Exec_backend.[ Interp; Compiled; Auto ];
  (* The off header is byte-identical to the legacy two-field line. *)
  Alcotest.(check string)
    "off = legacy bytes" "wasai-journal-hdr\tbackend=auto"
    (Campaign.Journal.line_of_header
       { Campaign.Journal.jh_backend = Core.Exec_backend.Auto;
         jh_telemetry = false });
  List.iter
    (fun line ->
      match Campaign.Journal.header_of_line line with
      | Ok _ -> Alcotest.failf "accepted bad header %S" line
      | Error _ -> ())
    [
      "";
      "wasai-journal-hdr";
      "wasai-journal-hdr\tbackend=warp";
      "wasai-journal-hdr\tbackend=interp\textra=1";
      "wasai-journal-hdr\tbackend=interp\ttelemetry=off";
      "wasai-journal-hdr\tbackend=interp\ttelemetry=on\textra=1";
      "wasai-journal\tbackend=interp";
    ]

let with_temp_file f =
  let path = Filename.temp_file "wasai_test_hdr" ".jnl" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let test_header_resume_discipline () =
  with_temp_file (fun path ->
      Sys.remove path;
      let w =
        Campaign.Journal.open_writer
          ~header:
            { Campaign.Journal.jh_backend = Core.Exec_backend.Compiled;
              jh_telemetry = false }
          path
      in
      ignore w;
      let header, entries = Campaign.Journal.load_with_header path in
      Alcotest.(check int) "fresh journal has no entries" 0 (List.length entries);
      (match header with
      | Some h ->
          Alcotest.(check string)
            "stamped backend" "compiled"
            (Core.Exec_backend.to_string h.Campaign.Journal.jh_backend)
      | None -> Alcotest.fail "header missing from fresh journal");
      (* Same tier resumes; headerless legacy journals resume; a
         different tier — including Auto vs Compiled — refuses. *)
      Campaign.Campaign.validate_header ~context:"t" Core.Exec_backend.Compiled header;
      Campaign.Campaign.validate_header ~context:"t" Core.Exec_backend.Interp None;
      List.iter
        (fun backend ->
          match Campaign.Campaign.validate_header ~context:"t" backend header with
          | () -> Alcotest.fail "mismatched backend accepted"
          | exception Failure msg ->
              Alcotest.(check bool)
                "refusal names both tiers" true
                (String.length msg > 0
                && String.index_opt msg '='
                   <> None))
        Core.Exec_backend.[ Interp; Auto ];
      (* The telemetry stamp obeys the same discipline: matching runs
         resume, a flipped switch refuses in either direction. *)
      let on =
        Some
          { Campaign.Journal.jh_backend = Core.Exec_backend.Compiled;
            jh_telemetry = true }
      in
      Campaign.Campaign.validate_header ~context:"t" ~telemetry:true
        Core.Exec_backend.Compiled on;
      (match
         Campaign.Campaign.validate_header ~context:"t"
           Core.Exec_backend.Compiled on
       with
      | () -> Alcotest.fail "telemetry=on journal resumed without --telemetry"
      | exception Failure _ -> ());
      match
        Campaign.Campaign.validate_header ~context:"t" ~telemetry:true
          Core.Exec_backend.Compiled header
      with
      | () -> Alcotest.fail "telemetry=off journal resumed with --telemetry"
      | exception Failure _ -> ())

let test_header_only_line_one () =
  with_temp_file (fun path ->
      let hdr =
        Campaign.Journal.line_of_header
          { Campaign.Journal.jh_backend = Core.Exec_backend.Auto;
            jh_telemetry = false }
      in
      let oc = open_out path in
      output_string oc (hdr ^ "\n" ^ hdr ^ "\n");
      close_out oc;
      match Campaign.Journal.load_with_header path with
      | _ -> Alcotest.fail "duplicate header accepted"
      | exception Campaign.Journal.Malformed _ -> ())

(* ------------------------------------------------------------------ *)
(* make_config validation                                               *)
(* ------------------------------------------------------------------ *)

let test_make_config () =
  let default = Core.Engine.default_config in
  Alcotest.(check bool)
    "defaults" true
    (Core.Engine.make_config () = default);
  Alcotest.(check bool)
    "backend defaults to auto" true
    (default.Core.Engine.cfg_backend = Core.Exec_backend.Auto);
  let rejects label build expect =
    match build () with
    | (_ : Core.Engine.config) -> Alcotest.failf "%s accepted" label
    | exception Core.Engine.Invalid_config e ->
        Alcotest.(check string)
          label
          (Core.Engine.string_of_config_error expect)
          (Core.Engine.string_of_config_error e)
  in
  rejects "rounds=0"
    (fun () -> Core.Engine.make_config ~rounds:0 ())
    (Core.Engine.Bad_rounds 0);
  rejects "time_limit=0"
    (fun () -> Core.Engine.make_config ~time_limit:0.0 ())
    (Core.Engine.Bad_time_limit 0.0);
  rejects "solver_budget=-1"
    (fun () -> Core.Engine.make_config ~solver_budget:(-1) ())
    (Core.Engine.Bad_solver_budget (-1));
  rejects "max_flips=0"
    (fun () -> Core.Engine.make_config ~max_flips:0 ())
    (Core.Engine.Bad_max_flips 0);
  rejects "fuel=0"
    (fun () -> Core.Engine.make_config ~fuel:0 ())
    (Core.Engine.Bad_fuel 0);
  rejects "empty preload"
    (fun () -> Core.Engine.make_config ~preload:[] ())
    Core.Engine.Bad_preload;
  (* of_string/to_string cover the CLI surface. *)
  List.iter
    (fun backend ->
      match Core.Exec_backend.(of_string (to_string backend)) with
      | Ok b ->
          Alcotest.(check bool) "choice round trip" true (b = backend)
      | Error e -> Alcotest.failf "choice rejected: %s" e)
    Core.Exec_backend.[ Interp; Compiled; Auto ];
  match Core.Exec_backend.of_string "jit" with
  | Ok _ -> Alcotest.fail "bad backend accepted"
  | Error _ -> ()

let () =
  Alcotest.run "compile"
    [
      ( "backend-parity",
        [
          Alcotest.test_case "corpus outcomes and journal lines" `Quick
            test_corpus_outcome_parity;
          Alcotest.test_case "per-payload trace tapes" `Quick
            test_corpus_tape_parity;
        ] );
      ( "fallback",
        [
          Alcotest.test_case "boundary crossing" `Quick test_fallback_boundary;
          Alcotest.test_case "fuel exhaustion parity" `Quick test_fuel_parity;
        ] );
      ( "journal-header",
        [
          Alcotest.test_case "round trip and rejection" `Quick
            test_header_round_trip;
          Alcotest.test_case "resume discipline" `Quick
            test_header_resume_discipline;
          Alcotest.test_case "header only on line 1" `Quick
            test_header_only_line_one;
        ] );
      ( "config",
        [ Alcotest.test_case "make_config validation" `Quick test_make_config ]
      );
    ]
