lib/symbolic/memmodel.ml: Char Hashtbl Int64 Printf String Wasai_smt
