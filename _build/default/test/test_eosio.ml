(* Tests for the EOSIO substrate: names, assets, ABI codec, database,
   token semantics, transaction rollback, notifications, and a Wasm
   contract executing end-to-end on the chain. *)

open Wasai_eosio
module Wasm = Wasai_wasm

let n = Name.of_string

(* ------------------------------------------------------------------ *)
(* Names                                                               *)
(* ------------------------------------------------------------------ *)

let test_name_roundtrip () =
  List.iter
    (fun s -> Alcotest.(check string) s s (Name.to_string (Name.of_string s)))
    [ "eosio"; "eosio.token"; "eosbet"; "a"; "zzzzzzzzzzzz"; "fake.token"; "" ]

let test_name_known_value () =
  (* Cross-checked with Nodeos: N(eosio) = 0x5530EA0000000000. *)
  Alcotest.(check int64) "N(eosio)" 0x5530EA0000000000L (Name.of_string "eosio")

let test_name_rejects_bad_chars () =
  Alcotest.(check bool) "uppercase rejected" true
    (match Name.of_string "EOS" with
     | _ -> false
     | exception Invalid_argument _ -> true)

let qcheck_name_roundtrip =
  let gen =
    QCheck.Gen.(
      map
        (fun (len, seed) ->
          Wasai_support.Rand.eosio_name_string
            (Wasai_support.Rand.create (Int64.of_int seed))
            (1 + (len mod 12)))
        (pair small_nat int))
  in
  QCheck.Test.make ~name:"name roundtrip (random)" ~count:300
    (QCheck.make gen ~print:Fun.id)
    (fun s -> Name.to_string (Name.of_string s) = s)

(* ------------------------------------------------------------------ *)
(* Assets                                                              *)
(* ------------------------------------------------------------------ *)

let test_asset_parse_print () =
  let a = Asset.of_string "10.0000 EOS" in
  Alcotest.(check int64) "amount" 100000L a.Asset.amount;
  Alcotest.(check string) "print" "10.0000 EOS" (Asset.to_string a);
  let b = Asset.of_string "0.0001 EOS" in
  Alcotest.(check string) "small" "0.0001 EOS" (Asset.to_string b);
  let c = Asset.of_string "-3.5000 EOS" in
  Alcotest.(check string) "negative" "-3.5000 EOS" (Asset.to_string c)

let test_asset_symbol () =
  let s = Asset.Symbol.make ~precision:4 "EOS" in
  Alcotest.(check int) "precision" 4 (Asset.Symbol.precision s);
  Alcotest.(check string) "code" "EOS" (Asset.Symbol.code s);
  Alcotest.(check bool) "eos constant" true (Asset.Symbol.equal s Asset.Symbol.eos)

let test_asset_arith () =
  let a = Asset.eos_of_units 10L and b = Asset.eos_of_units 3L in
  Alcotest.(check int64) "add" 13L (Asset.add a b).Asset.amount;
  Alcotest.(check int64) "sub" 7L (Asset.sub a b).Asset.amount;
  let other = Asset.make 1L (Asset.Symbol.make ~precision:0 "SYS") in
  Alcotest.(check bool) "mismatch rejected" true
    (match Asset.add a other with
     | _ -> false
     | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* ABI                                                                 *)
(* ------------------------------------------------------------------ *)

let transfer_args =
  [
    Abi.V_name (n "alice");
    Abi.V_name (n "bob");
    Abi.V_asset (Asset.of_string "1.0000 EOS");
    Abi.V_string "hi bob";
  ]

let test_abi_roundtrip () =
  let data = Abi.serialize transfer_args in
  Alcotest.(check int) "size" (8 + 8 + 16 + 1 + 6) (String.length data);
  let back = Abi.deserialize Abi.transfer_action data in
  Alcotest.(check bool) "roundtrip" true (back = transfer_args)

let test_abi_layout () =
  (* The paper's Table 2 layout: from@0, to@8, quantity@16, memo@32. *)
  let offs = Abi.static_offsets Abi.transfer_action in
  Alcotest.(check (list (pair string int)))
    "static offsets"
    [ ("from", 0); ("to", 8); ("quantity", 16); ("memo", 32) ]
    (List.map (fun (name, _, off) -> (name, off)) offs)

let test_abi_text_roundtrip () =
  let abi =
    {
      Abi.abi_actions =
        [
          Abi.transfer_action;
          {
            Abi.act_name = n "deposit";
            act_params = [ ("player", Abi.T_name); ("amount", Abi.T_u64) ];
          };
          { Abi.act_name = n "ping"; act_params = [] };
        ];
    }
  in
  let text = Abi.to_text abi in
  let abi' = Abi.of_text text in
  Alcotest.(check bool) "text roundtrip" true (abi' = abi);
  (* Comments and blank lines are tolerated. *)
  let abi'' = Abi.of_text ("# header\n\n" ^ text ^ "\n# trailing\n") in
  Alcotest.(check bool) "comments ignored" true (abi'' = abi)

let test_abi_text_rejects () =
  List.iter
    (fun src ->
      match Abi.of_text src with
      | _ -> Alcotest.failf "accepted %S" src
      | exception Abi.Parse_error _ -> ()
      | exception Invalid_argument _ -> ())
    [ "transfer"; "transfer(from:name"; "t(x:unknown_type)"; "BAD(x:name)" ]

let test_abi_truncated () =
  Alcotest.(check bool) "truncated rejected" true
    (match Abi.deserialize Abi.transfer_action "\x01\x02" with
     | _ -> false
     | exception Abi.Deserialize_error _ -> true)

let qcheck_abi_roundtrip =
  let gen =
    QCheck.Gen.(
      QCheck.Gen.map
        (fun (a, b, (amt, memo_seed)) ->
          [
            Abi.V_name (Int64.of_int (abs a));
            Abi.V_name (Int64.of_int (abs b));
            Abi.V_asset (Asset.eos_of_units (Int64.of_int amt));
            Abi.V_string
              (Wasai_support.Rand.ascii_string
                 (Wasai_support.Rand.create (Int64.of_int memo_seed))
                 (abs memo_seed mod 100));
          ])
        (triple int int (pair small_nat int)))
  in
  QCheck.Test.make ~name:"abi transfer roundtrip (random)" ~count:300
    (QCheck.make gen)
    (fun args ->
      Abi.deserialize Abi.transfer_action (Abi.serialize args) = args)

(* ------------------------------------------------------------------ *)
(* Database                                                            *)
(* ------------------------------------------------------------------ *)

let test_db_basic () =
  let db = Database.create () in
  let code = n "ctr" and scope = n "ctr" and tbl = n "tb" in
  let it = Database.store db ~code ~scope ~tbl ~id:5L ~data:"five" in
  Alcotest.(check string) "get" "five" (Database.get db it);
  Alcotest.(check bool) "find hits" true (Database.find db ~code ~scope ~tbl ~id:5L >= 0);
  Alcotest.(check int) "find misses" (-1) (Database.find db ~code ~scope ~tbl ~id:6L);
  Database.update db it ~data:"FIVE";
  Alcotest.(check string) "updated" "FIVE" (Database.get db it);
  Database.remove db it;
  Alcotest.(check int) "removed" (-1) (Database.find db ~code ~scope ~tbl ~id:5L)

let test_db_duplicate_store_traps () =
  let db = Database.create () in
  let code = n "c" and scope = n "c" and tbl = n "t" in
  ignore (Database.store db ~code ~scope ~tbl ~id:1L ~data:"x");
  Alcotest.(check bool) "duplicate traps" true
    (match Database.store db ~code ~scope ~tbl ~id:1L ~data:"y" with
     | _ -> false
     | exception Wasm.Values.Trap _ -> true)

let test_db_iteration () =
  let db = Database.create () in
  let code = n "c" and scope = n "c" and tbl = n "t" in
  List.iter
    (fun id -> ignore (Database.store db ~code ~scope ~tbl ~id ~data:(Int64.to_string id)))
    [ 10L; 30L; 20L ];
  let it0 = Database.lowerbound db ~code ~scope ~tbl ~id:0L in
  Alcotest.(check int64) "lowerbound first" 10L (Database.primary db it0);
  let it1, p1 = Database.next db it0 in
  Alcotest.(check int64) "next sorted" 20L p1;
  let it2, p2 = Database.next db it1 in
  Alcotest.(check int64) "next next" 30L p2;
  let it3, _ = Database.next db it2 in
  Alcotest.(check int) "exhausted" (-1) it3

let test_db_secondary_index () =
  let db = Database.create () in
  let code = n "c" and scope = n "c" and tbl = n "t" in
  (* Primary rows plus a secondary u64 index (e.g. balances by amount). *)
  List.iter
    (fun (primary, secondary) ->
      ignore
        (Database.store db ~code ~scope ~tbl ~id:primary
           ~data:(Int64.to_string primary));
      ignore (Database.idx64_store db ~code ~scope ~tbl ~primary ~secondary))
    [ (1L, 500L); (2L, 100L); (3L, 300L) ];
  let _, p = Database.idx64_find_secondary db ~code ~scope ~tbl ~secondary:300L in
  Alcotest.(check int64) "find by secondary" 3L p;
  let it, _ = Database.idx64_find_secondary db ~code ~scope ~tbl ~secondary:999L in
  Alcotest.(check int) "missing secondary" (-1) it;
  let _, p = Database.idx64_lowerbound db ~code ~scope ~tbl ~secondary:200L in
  Alcotest.(check int64) "lowerbound 200 -> 300's row" 3L p;
  (* Update row 2's secondary; the index must follow. *)
  Database.idx64_update db ~code ~scope ~tbl ~primary:2L ~secondary:700L;
  let it, _ = Database.idx64_find_secondary db ~code ~scope ~tbl ~secondary:100L in
  Alcotest.(check int) "old key gone" (-1) it;
  let _, p = Database.idx64_find_secondary db ~code ~scope ~tbl ~secondary:700L in
  Alcotest.(check int64) "new key found" 2L p;
  (* The index table participates in snapshots. *)
  let snap = Database.snapshot db in
  Database.idx64_remove db ~code ~scope ~tbl ~primary:3L;
  Database.restore db snap;
  let _, p = Database.idx64_find_secondary db ~code ~scope ~tbl ~secondary:300L in
  Alcotest.(check int64) "index restored with snapshot" 3L p

let test_db_snapshot () =
  let db = Database.create () in
  let code = n "c" and scope = n "c" and tbl = n "t" in
  ignore (Database.store db ~code ~scope ~tbl ~id:1L ~data:"before");
  let snap = Database.snapshot db in
  Database.put_row db ~code ~scope ~tbl ~id:1L ~data:"after";
  ignore (Database.store db ~code ~scope ~tbl ~id:2L ~data:"extra");
  Database.restore db snap;
  Alcotest.(check (option string)) "restored value" (Some "before")
    (Database.get_row db ~code ~scope ~tbl ~id:1L);
  Alcotest.(check (option string)) "extra gone" None
    (Database.get_row db ~code ~scope ~tbl ~id:2L)

let test_db_access_log () =
  let db = Database.create () in
  let log = ref [] in
  db.Database.on_access <- Some (fun a -> log := a :: !log);
  ignore (Database.store db ~code:(n "c") ~scope:(n "c") ~tbl:(n "t") ~id:1L ~data:"");
  ignore (Database.find db ~code:(n "c") ~scope:(n "c") ~tbl:(n "t") ~id:1L);
  let kinds = List.rev_map (fun a -> a.Database.acc_kind) !log in
  Alcotest.(check bool) "write then read" true
    (kinds = [ Database.Write; Database.Read ])

(* ------------------------------------------------------------------ *)
(* Chain + token                                                       *)
(* ------------------------------------------------------------------ *)

let fresh_chain () =
  let chain = Host.create_chain () in
  Token.bootstrap chain ~treasury:(n "treasury") ~supply:1_000_000_0000L;
  List.iter
    (fun a -> ignore (Chain.create_account chain (n a)))
    [ "alice"; "bob"; "eosbet" ];
  chain

let transfer chain ~from ~to_ ~amount ~memo =
  Chain.push_action chain
    (Token.transfer_action ~token:Name.eosio_token ~from ~to_
       ~quantity:(Asset.eos_of_units amount) ~memo)

let test_token_transfer () =
  let chain = fresh_chain () in
  let r = transfer chain ~from:(n "treasury") ~to_:(n "alice") ~amount:50_0000L ~memo:"" in
  Alcotest.(check bool) "tx ok" true r.Chain.tx_ok;
  Alcotest.(check int64) "alice credited" 50_0000L
    (Token.eos_balance chain ~owner:(n "alice"));
  (* Both parties are notified, in order: token, then from, then to. *)
  let receivers = List.map (fun (r, _) -> Name.to_string r) r.Chain.tx_actions_run in
  Alcotest.(check (list string)) "notification order"
    [ "eosio.token"; "treasury"; "alice" ] receivers

let test_token_overdraw_fails () =
  let chain = fresh_chain () in
  let r = transfer chain ~from:(n "alice") ~to_:(n "bob") ~amount:1L ~memo:"" in
  Alcotest.(check bool) "tx fails" false r.Chain.tx_ok;
  Alcotest.(check int64) "bob unchanged" 0L (Token.eos_balance chain ~owner:(n "bob"))

let test_token_missing_auth () =
  let chain = fresh_chain () in
  ignore (transfer chain ~from:(n "treasury") ~to_:(n "alice") ~amount:10L ~memo:"");
  let act =
    Action.of_args ~account:Name.eosio_token ~name:Name.transfer
      ~args:
        [
          Abi.V_name (n "alice");
          Abi.V_name (n "bob");
          Abi.V_asset (Asset.eos_of_units 5L);
          Abi.V_string "steal";
        ]
      ~auth:[ n "bob" ] (* bob tries to move alice's tokens *)
  in
  let r = Chain.push_action chain act in
  Alcotest.(check bool) "rejected" false r.Chain.tx_ok

let test_fake_token_is_distinct () =
  let chain = fresh_chain () in
  (* Attacker deploys the same token code under fake.token and issues EOS. *)
  Token.deploy chain (n "fake.token");
  ignore (Chain.create_account chain (n "attacker"));
  let push a = ignore (Chain.push_action chain a) in
  push
    (Action.of_args ~account:(n "fake.token") ~name:(n "create")
       ~args:
         [ Abi.V_name (n "attacker"); Abi.V_asset (Asset.eos_of_units 1_000_0000L) ]
       ~auth:[ n "fake.token" ]);
  push
    (Action.of_args ~account:(n "fake.token") ~name:(n "issue")
       ~args:
         [
           Abi.V_name (n "attacker");
           Abi.V_asset (Asset.eos_of_units 1_000_0000L);
           Abi.V_string "";
         ]
       ~auth:[ n "attacker" ]);
  (* Fake EOS balance lives under fake.token's database, not eosio.token's. *)
  Alcotest.(check int64) "no real EOS" 0L
    (Token.eos_balance chain ~owner:(n "attacker"));
  Alcotest.(check int64) "fake EOS issued" 1_000_0000L
    (Token.balance_of chain ~token:(n "fake.token") ~owner:(n "attacker")
       ~symbol:Asset.Symbol.eos);
  (* Transferring fake EOS to a victim notifies the victim with
     code = fake.token. *)
  let r =
    Chain.push_action chain
      (Token.transfer_action ~token:(n "fake.token") ~from:(n "attacker")
         ~to_:(n "eosbet") ~quantity:(Asset.eos_of_units 10L) ~memo:"gotcha")
  in
  Alcotest.(check bool) "fake transfer ok" true r.Chain.tx_ok

let test_rollback_restores_balances () =
  let chain = fresh_chain () in
  ignore (transfer chain ~from:(n "treasury") ~to_:(n "alice") ~amount:100L ~memo:"");
  (* Transaction with two actions: a valid transfer then a failing one.
     The first transfer must be rolled back. *)
  let tx =
    {
      Action.tx_actions =
        [
          Token.transfer_action ~token:Name.eosio_token ~from:(n "alice")
            ~to_:(n "bob") ~quantity:(Asset.eos_of_units 60L) ~memo:"";
          Token.transfer_action ~token:Name.eosio_token ~from:(n "alice")
            ~to_:(n "bob") ~quantity:(Asset.eos_of_units 60L) ~memo:"";
        ];
    }
  in
  let r = Chain.push_transaction chain tx in
  Alcotest.(check bool) "second transfer overdraws" false r.Chain.tx_ok;
  Alcotest.(check int64) "alice balance restored" 100L
    (Token.eos_balance chain ~owner:(n "alice"));
  Alcotest.(check int64) "bob got nothing" 0L
    (Token.eos_balance chain ~owner:(n "bob"))

let test_deferred_independent () =
  let chain = fresh_chain () in
  ignore (transfer chain ~from:(n "treasury") ~to_:(n "alice") ~amount:10L ~memo:"");
  chain.Chain.deferred <-
    [
      {
        Action.tx_actions =
          [
            Token.transfer_action ~token:Name.eosio_token ~from:(n "alice")
              ~to_:(n "bob") ~quantity:(Asset.eos_of_units 10_000L) ~memo:"";
          ];
      };
      {
        Action.tx_actions =
          [
            Token.transfer_action ~token:Name.eosio_token ~from:(n "alice")
              ~to_:(n "bob") ~quantity:(Asset.eos_of_units 5L) ~memo:"";
          ];
      };
    ];
  let results = Chain.run_deferred chain in
  (* deferred list is LIFO-appended: second pushed runs first after rev *)
  Alcotest.(check int) "two deferred" 2 (List.length results);
  Alcotest.(check int64) "good deferred applied" 5L
    (Token.eos_balance chain ~owner:(n "bob"))

let test_inline_depth_first () =
  (* Inline actions expand depth-first: A queues [B; C], B queues D;
     execution order must be A, B, D, C (Nodeos semantics — the ordering
     the Rollback exploit's balance check depends on). *)
  let chain = Host.create_chain () in
  let order = ref [] in
  let note name = order := name :: !order in
  let queue_inline ctx target =
    Queue.add
      (Action.make ~account:target ~name:(n "go") ~data:"" ~auth:[ target ])
      ctx.Chain.ctx_inline
  in
  Chain.set_native chain (n "aaa")
    (fun ctx ->
      note "A";
      queue_inline ctx (n "bbb");
      queue_inline ctx (n "ccc"))
    { Abi.abi_actions = [] };
  Chain.set_native chain (n "bbb")
    (fun ctx ->
      note "B";
      queue_inline ctx (n "ddd"))
    { Abi.abi_actions = [] };
  Chain.set_native chain (n "ccc") (fun _ -> note "C") { Abi.abi_actions = [] };
  Chain.set_native chain (n "ddd") (fun _ -> note "D") { Abi.abi_actions = [] };
  let r =
    Chain.push_action chain
      (Action.make ~account:(n "aaa") ~name:(n "go") ~data:"" ~auth:[ n "aaa" ])
  in
  Alcotest.(check bool) "tx ok" true r.Chain.tx_ok;
  Alcotest.(check (list string)) "depth-first order" [ "A"; "B"; "D"; "C" ]
    (List.rev !order)

let test_deferred_rolled_back_with_tx () =
  (* A deferred transaction scheduled inside a failing transaction must be
     discarded with it (regression: the lottery patch depends on this). *)
  let chain = Host.create_chain () in
  Chain.set_native chain (n "boom")
    (fun ctx ->
      chain.Chain.deferred <-
        {
          Action.tx_actions =
            [ Action.make ~account:(n "boom") ~name:(n "later") ~data:"" ~auth:[] ];
        }
        :: chain.Chain.deferred;
      if Name.equal ctx.Chain.ctx_action.Action.act_name (n "fail") then
        raise (Chain.Assert_failed "abort"))
    { Abi.abi_actions = [] };
  let r =
    Chain.push_action chain
      (Action.make ~account:(n "boom") ~name:(n "fail") ~data:"" ~auth:[])
  in
  Alcotest.(check bool) "tx failed" false r.Chain.tx_ok;
  Alcotest.(check int) "deferred discarded" 0 (List.length chain.Chain.deferred);
  let r2 =
    Chain.push_action chain
      (Action.make ~account:(n "boom") ~name:(n "okay") ~data:"" ~auth:[])
  in
  Alcotest.(check bool) "tx ok" true r2.Chain.tx_ok;
  Alcotest.(check int) "deferred kept on success" 1
    (List.length chain.Chain.deferred)

let test_fuel_bounds_contract () =
  (* A runaway contract exhausts its fuel; the transaction fails and the
     chain keeps working. *)
  let chain = Host.create_chain ~fuel_per_action:50_000 () in
  let b = Wasm.Builder.create () in
  let apply =
    Wasm.Builder.add_func b ~name:"apply"
      (Wasm.Types.func_type [ Wasm.Types.I64; Wasm.Types.I64; Wasm.Types.I64 ])
      [ Wasm.Builder.I.block [ Wasm.Builder.I.loop [ Wasm.Builder.I.br 0 ] ] ]
  in
  Wasm.Builder.export_func b "apply" apply;
  Chain.set_code chain (n "spin") (Wasm.Builder.build b) { Abi.abi_actions = [] };
  let r =
    Chain.push_action chain
      (Action.make ~account:(n "spin") ~name:(n "go") ~data:"" ~auth:[])
  in
  Alcotest.(check bool) "tx failed" false r.Chain.tx_ok;
  (match r.Chain.tx_error with
   | Some msg ->
       Alcotest.(check bool) "exhaustion reported" true
         (String.length msg >= 10 && String.sub msg 0 10 = "exhaustion")
   | None -> Alcotest.fail "expected an error");
  Alcotest.(check bool) "chain alive" true
    (Chain.push_action chain
       (Action.make ~account:(n "nobody") ~name:(n "noop") ~data:"" ~auth:[]))
      .Chain.tx_ok

(* ------------------------------------------------------------------ *)
(* A Wasm contract end-to-end on the chain                             *)
(* ------------------------------------------------------------------ *)

(* A contract with apply(receiver, code, action) that, on "transfer",
   reads the action data, requires the payer's auth and records the
   amount in its database table "log". *)
let build_logging_contract () =
  let open Wasm.Builder in
  let open Wasm.Builder.I in
  let b = create () in
  let i64t = Wasm.Types.I64 and i32t = Wasm.Types.I32 in
  let ft = Wasm.Types.func_type in
  let read_action_data =
    import_func b ~module_:"env" ~name:"read_action_data"
      (ft [ i32t; i32t ] ~results:[ i32t ])
  in
  let action_data_size =
    import_func b ~module_:"env" ~name:"action_data_size" (ft [] ~results:[ i32t ])
  in
  let require_auth = import_func b ~module_:"env" ~name:"require_auth" (ft [ i64t ]) in
  let db_store =
    import_func b ~module_:"env" ~name:"db_store_i64"
      (ft [ i64t; i64t; i64t; i64t; i32t; i32t ] ~results:[ i32t ])
  in
  add_memory b 1;
  let self = n "logger" in
  let apply =
    add_func b ~name:"apply" (ft [ i64t; i64t; i64t ])
      [
        (* if action == transfer *)
        local_get 2;
        i64 Name.transfer;
        i64_eq;
        if_
          [
            (* read_action_data(0, action_data_size()) *)
            i32 0; call action_data_size; call read_action_data; drop;
            (* require_auth(from = i64.load(0)) *)
            i32 0; i64_load (); call require_auth;
            (* db_store_i64(scope=self, table="log", payer=self,
               id=from, data=16..32 (quantity), len=16) *)
            i64 self; i64 (n "log"); i64 self;
            i32 0; i64_load ();
            i32 16; i32 16;
            call db_store; drop;
          ]
          [];
      ]
  in
  export_func b "apply" apply;
  build b

let test_wasm_contract_on_chain () =
  let chain = fresh_chain () in
  let m = build_logging_contract () in
  Chain.set_code chain (n "logger") m
    { Abi.abi_actions = [ Abi.transfer_action ] };
  ignore (Chain.create_account chain (n "logger"));
  let act =
    Action.of_args ~account:(n "logger") ~name:Name.transfer
      ~args:
        [
          Abi.V_name (n "alice");
          Abi.V_name (n "logger");
          Abi.V_asset (Asset.eos_of_units 77L);
          Abi.V_string "direct call";
        ]
      ~auth:[ n "alice" ]
  in
  let r = Chain.push_action chain act in
  Alcotest.(check bool) "tx ok" true r.Chain.tx_ok;
  (* Contract stored the quantity bytes under id = N(alice). *)
  (match
     Database.get_row chain.Chain.db ~code:(n "logger") ~scope:(n "logger")
       ~tbl:(n "log") ~id:(n "alice")
   with
   | Some data ->
       Alcotest.(check int) "16 bytes stored" 16 (String.length data);
       Alcotest.(check int64) "amount bytes" 77L (Abi.read_le data 0 8)
   | None -> Alcotest.fail "row missing");
  (* Without alice's auth the same action aborts. *)
  let bad = { act with Action.act_auth = [ n "bob" ] } in
  let r2 = Chain.push_action chain bad in
  Alcotest.(check bool) "missing auth rejected" false r2.Chain.tx_ok

let test_wasm_contract_notified_by_token () =
  let chain = fresh_chain () in
  let m = build_logging_contract () in
  Chain.set_code chain (n "logger") m
    { Abi.abi_actions = [ Abi.transfer_action ] };
  ignore (transfer chain ~from:(n "treasury") ~to_:(n "alice") ~amount:100L ~memo:"");
  (* A genuine transfer to the contract triggers its eosponser via
     notification; code = eosio.token. *)
  let r = transfer chain ~from:(n "alice") ~to_:(n "logger") ~amount:5L ~memo:"pay" in
  Alcotest.(check bool) "tx ok" true r.Chain.tx_ok;
  Alcotest.(check bool) "logger row written" true
    (Database.get_row chain.Chain.db ~code:(n "logger") ~scope:(n "logger")
       ~tbl:(n "log") ~id:(n "alice")
     <> None)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "wasai_eosio"
    [
      ( "name",
        [
          Alcotest.test_case "roundtrip" `Quick test_name_roundtrip;
          Alcotest.test_case "known value" `Quick test_name_known_value;
          Alcotest.test_case "bad chars" `Quick test_name_rejects_bad_chars;
          qc qcheck_name_roundtrip;
        ] );
      ( "asset",
        [
          Alcotest.test_case "parse/print" `Quick test_asset_parse_print;
          Alcotest.test_case "symbol" `Quick test_asset_symbol;
          Alcotest.test_case "arith" `Quick test_asset_arith;
        ] );
      ( "abi",
        [
          Alcotest.test_case "roundtrip" `Quick test_abi_roundtrip;
          Alcotest.test_case "table-2 layout" `Quick test_abi_layout;
          Alcotest.test_case "truncated" `Quick test_abi_truncated;
          Alcotest.test_case "text format roundtrip" `Quick test_abi_text_roundtrip;
          Alcotest.test_case "text format rejects" `Quick test_abi_text_rejects;
          qc qcheck_abi_roundtrip;
        ] );
      ( "database",
        [
          Alcotest.test_case "basic ops" `Quick test_db_basic;
          Alcotest.test_case "duplicate store" `Quick test_db_duplicate_store_traps;
          Alcotest.test_case "iteration" `Quick test_db_iteration;
          Alcotest.test_case "snapshot/restore" `Quick test_db_snapshot;
          Alcotest.test_case "secondary index" `Quick test_db_secondary_index;
          Alcotest.test_case "access log" `Quick test_db_access_log;
        ] );
      ( "chain",
        [
          Alcotest.test_case "token transfer + notify" `Quick test_token_transfer;
          Alcotest.test_case "overdraw fails" `Quick test_token_overdraw_fails;
          Alcotest.test_case "missing auth" `Quick test_token_missing_auth;
          Alcotest.test_case "fake token distinct" `Quick test_fake_token_is_distinct;
          Alcotest.test_case "tx rollback" `Quick test_rollback_restores_balances;
          Alcotest.test_case "deferred independent" `Quick test_deferred_independent;
          Alcotest.test_case "inline depth-first" `Quick test_inline_depth_first;
          Alcotest.test_case "deferred rollback" `Quick
            test_deferred_rolled_back_with_tx;
          Alcotest.test_case "fuel bounds contracts" `Quick
            test_fuel_bounds_contract;
        ] );
      ( "wasm-on-chain",
        [
          Alcotest.test_case "direct action" `Quick test_wasm_contract_on_chain;
          Alcotest.test_case "token notification" `Quick
            test_wasm_contract_notified_by_token;
        ] );
    ]
