(** Generator of EOSIO contract binaries for the benchmark.

    Every sample is a genuine Wasm module built with the builder DSL and
    shipped through the binary encoder, modelled on the profitable
    lottery/market contracts the paper studies: an [apply] dispatcher, an
    eosponser responding to EOS transfers, and auxiliary actions that
    create the stateful behaviour (DB gates) the fuzzer must sequence
    transactions for.

    The [spec] switches reproduce each vulnerability class and its patched
    variant:
    - Fake EOS        : presence of the Listing-1 [code == eosio.token] guard
    - Fake Notif      : presence of the Listing-2 [to == _self] guard
    - MissAuth        : presence of [require_auth] before side effects
    - BlockinfoDep    : use of [tapos_*] as a randomness source
    - Rollback        : payout through [send_inline] vs a deferred action *)

module Wasm = Wasai_wasm
module T = Wasm.Types
module B = Wasm.Builder
module I = Wasm.Builder.I
open Wasai_eosio

type dispatcher_style = Indirect | Direct

(* A parameter check injected at the eosponser entry: compare a field of
   the input against a constant, trap (unreachable) on mismatch. *)
type check_target =
  | Chk_from
  | Chk_to
  | Chk_amount
  | Chk_symbol
  | Chk_memo_len
  | Chk_memo_prefix  (** first 8 bytes of the memo content *)

type check = { chk_target : check_target; chk_value : int64 }

type guard_style = Guard_assert | Guard_if_return

type spec = {
  sp_account : Name.t;
  sp_eos_guard_style : guard_style;
      (** Listing 1's patch written as an assert, or as a silent
          [if (code != eosio.token) return] — the latter makes rejected
          fake transfers *succeed*, which success-based oracles misread *)
  sp_fake_eos_guard : bool;
  sp_fake_notif_guard : bool;
  sp_auth_check : bool;
  sp_blockinfo : bool;
  sp_payout_inline : bool;  (** true: send_inline (Rollback-unsafe); false: deferred *)
  sp_has_payout : bool;
  sp_db_gate : bool;  (** eosponser requires a players-table row *)
  sp_multi_table : bool;  (** gate additionally needs a meta row keyed by a setup param *)
  sp_deposit_auth : bool option;
      (** override for deposit/reveal auth; [None] follows [sp_auth_check] *)
  sp_admin_reveal : bool;  (** rollback template behind an admin-only action *)
  sp_min_bet : int64 option;
  sp_memo_gate : string option;  (** memo must equal this string to reach payout *)
  sp_checks : check list;  (** complicated-verification injections *)
  sp_dead_template : bool;  (** put blockinfo/rollback template behind an unsatisfiable branch *)
  sp_dispatcher : dispatcher_style;
  sp_log_notifications : bool;
      (** print a console line for every notification (before any guard) —
          the honeypot-ish pattern that fools success-based oracles *)
  sp_milestones : milestone list;
      (** nested if/else game logic: each level only opens once the
          previous level's equality is satisfied (coverage depth) *)
  sp_claim_loop : bool;
      (** add a [claim] action that folds over the players table with
          db_next in a Wasm loop (iteration-heavy traces) *)
  sp_double_payout : bool;  (** pay 2x the stake (lottery odds) *)
  sp_fair_coin : bool;
      (** leave the block-info coin genuinely 50/50 instead of pinning it
          (benchmarks pin it so the payout path is deterministic) *)
  sp_state_write : bool;
      (** the eosponser itself upserts players[from] = amount — the
          WACANA state-I/O pattern that makes forged notifications
          persist attacker-controlled rows *)
  sp_confused_dispatcher : bool;
      (** weaken the Listing-1 guard to [code == eosio.token || code ==
          _self] — the EVulHunter fake-transfer confusion that lets a
          direct [transfer] action reach the eosponser *)
  sp_payout_multiplier : int64 option;
      (** multiply the payout by this bonus factor with a raw [i64.mul]
          (the He et al. asset-overflow pattern when unchecked) *)
  sp_max_bet : int64 option;
      (** cap the stake before the payout arithmetic — the overflow
          patch *)
}

(** One milestone level: a single byte of an input field must match. *)
and milestone = {
  ml_field : milestone_field;
  ml_byte : int;  (** 0..7 *)
  ml_value : int;  (** 0..255 *)
}

and milestone_field = Ml_amount | Ml_from | Ml_to | Ml_memo

let default_spec account =
  {
    sp_account = account;
    sp_eos_guard_style = Guard_assert;
    sp_fake_eos_guard = true;
    sp_fake_notif_guard = true;
    sp_auth_check = true;
    sp_blockinfo = false;
    sp_payout_inline = false;
    sp_has_payout = true;
    sp_db_gate = false;
    sp_multi_table = false;
    sp_deposit_auth = None;
    sp_admin_reveal = false;
    sp_min_bet = None;
    sp_memo_gate = None;
    sp_checks = [];
    sp_dead_template = false;
    sp_dispatcher = Indirect;
    sp_log_notifications = false;
    sp_milestones = [];
    sp_claim_loop = false;
    sp_double_payout = false;
    sp_fair_coin = false;
    sp_state_write = false;
    sp_confused_dispatcher = false;
    sp_payout_multiplier = None;
    sp_max_bet = None;
  }

(* Memory map of generated contracts. *)
let scratch_base = 64  (* deposit row buffer *)
let inline_buf = 128  (* serialised inline/deferred action *)
let action_data_base = 1024  (* deserialised input *)
let msg_base = 2048  (* assert message strings *)

let tbl_players = Name.of_string "players"
let tbl_meta = Name.of_string "meta"
let act_deposit = Name.of_string "deposit"
let act_reveal = Name.of_string "reveal"
let act_setup = Name.of_string "setup"
let act_claim = Name.of_string "claim"
let admin_account = Name.of_string "conadmin"

(* The shared action-function signature: (self, a, b, c_ptr, d_ptr).
   The SDK-style dispatcher casts every action to this shape, so one
   indirect-call table serves all actions (§3.4.2's indirect pattern). *)
let action_sig = T.func_type [ T.I64; T.I64; T.I64; T.I32; T.I32 ]

type imports = {
  i_read_action_data : int;
  i_action_data_size : int;
  i_require_auth : int;
  i_eosio_assert : int;
  i_send_inline : int;
  i_send_deferred : int;
  i_tapos_block_num : int;
  i_tapos_block_prefix : int;
  i_db_store : int;
  i_db_find : int;
  i_db_update : int;
  i_db_lowerbound : int;
  i_db_next : int;
  i_db_get : int;
  i_printi : int;
}

let declare_imports b : imports =
  let ft = T.func_type in
  {
    i_read_action_data =
      B.import_func b ~module_:"env" ~name:"read_action_data"
        (ft [ T.I32; T.I32 ] ~results:[ T.I32 ]);
    i_action_data_size =
      B.import_func b ~module_:"env" ~name:"action_data_size"
        (ft [] ~results:[ T.I32 ]);
    i_require_auth =
      B.import_func b ~module_:"env" ~name:"require_auth" (ft [ T.I64 ]);
    i_eosio_assert =
      B.import_func b ~module_:"env" ~name:"eosio_assert" (ft [ T.I32; T.I32 ]);
    i_send_inline =
      B.import_func b ~module_:"env" ~name:"send_inline" (ft [ T.I32; T.I32 ]);
    i_send_deferred =
      B.import_func b ~module_:"env" ~name:"send_deferred"
        (ft [ T.I64; T.I64; T.I32; T.I32; T.I32 ]);
    i_tapos_block_num =
      B.import_func b ~module_:"env" ~name:"tapos_block_num" (ft [] ~results:[ T.I32 ]);
    i_tapos_block_prefix =
      B.import_func b ~module_:"env" ~name:"tapos_block_prefix"
        (ft [] ~results:[ T.I32 ]);
    i_db_store =
      B.import_func b ~module_:"env" ~name:"db_store_i64"
        (ft [ T.I64; T.I64; T.I64; T.I64; T.I32; T.I32 ] ~results:[ T.I32 ]);
    i_db_find =
      B.import_func b ~module_:"env" ~name:"db_find_i64"
        (ft [ T.I64; T.I64; T.I64; T.I64 ] ~results:[ T.I32 ]);
    i_db_update =
      B.import_func b ~module_:"env" ~name:"db_update_i64"
        (ft [ T.I32; T.I64; T.I32; T.I32 ]);
    i_db_lowerbound =
      B.import_func b ~module_:"env" ~name:"db_lowerbound_i64"
        (ft [ T.I64; T.I64; T.I64; T.I64 ] ~results:[ T.I32 ]);
    i_db_next =
      B.import_func b ~module_:"env" ~name:"db_next_i64"
        (ft [ T.I32; T.I32 ] ~results:[ T.I32 ]);
    i_db_get =
      B.import_func b ~module_:"env" ~name:"db_get_i64"
        (ft [ T.I32; T.I32; T.I32 ] ~results:[ T.I32 ]);
    i_printi = B.import_func b ~module_:"env" ~name:"printi" (ft [ T.I64 ]);
  }

(* assert with a message placed in the data segment *)
let mk_assert imp msg_off cond_instrs =
  cond_instrs @ [ I.i32 msg_off; I.call imp.i_eosio_assert ]

(* ------------------------------------------------------------------ *)
(* eosponser                                                           *)
(* ------------------------------------------------------------------ *)

(* Locals of every action function: 0 self, 1 a(from), 2 b(to), 3 c(qptr),
   4 d(memoptr); extra i64 scratch at 5, i32 scratch at 6. *)

let payout_code (spec : spec) imp ~(dest_local : int) : Wasm.Ast.instr list =
  (* Serialise a transfer of the incoming quantity back to [dest_local]
     and submit it inline (vulnerable to Rollback) or deferred (safe). *)
  [
    (* account = eosio.token *)
    I.i32 inline_buf; I.i64 Name.eosio_token; I.i64_store ();
    (* action name = transfer *)
    I.i32 (inline_buf + 8); I.i64 Name.transfer; I.i64_store ();
    (* data length = 33 *)
    I.i32 (inline_buf + 16); I.i32 33; I.i32_store ();
    (* data.from = self *)
    I.i32 (inline_buf + 20); I.local_get 0; I.i64_store ();
    (* data.to = winner *)
    I.i32 (inline_buf + 28); I.local_get dest_local; I.i64_store ();
    (* data.quantity = incoming quantity (amount, symbol); a lottery with
       odds pays double *)
    I.i32 (inline_buf + 36); I.local_get 3; I.i64_load ();
  ]
  @ (if spec.sp_double_payout then [ I.i64 1L; I.i64_shl ] else [])
  @ (match spec.sp_payout_multiplier with
     | Some m -> [ I.i64 m; I.i64_mul ]
     | None -> [])
  @ [
    I.i64_store ();
    I.i32 (inline_buf + 44); I.local_get 3; I.i64_load ~offset:8 (); I.i64_store ();
    (* data.memo = "" *)
    I.i32 (inline_buf + 52); I.i32 0; I.i32_store8 ();
  ]
  @
  if spec.sp_payout_inline then
    [ I.i32 inline_buf; I.i32 53; I.call imp.i_send_inline ]
  else
    [
      I.i64 1L; I.local_get 0; I.i32 inline_buf; I.i32 53; I.i32 0;
      I.call imp.i_send_deferred;
    ]

(* Nested milestone tree: level k is only reachable after satisfying the
   single-byte equality of level k-1 — the deep-coverage structure of
   real game contracts that only adaptive seeds explore.  Levels touch
   distinct (field, byte) pairs so the whole chain stays satisfiable. *)
let rec milestone_code imp (ms : milestone list) : Wasm.Ast.instr list =
  match ms with
  | [] -> []
  | m :: rest ->
      let load_field =
        match m.ml_field with
        | Ml_from -> [ I.local_get 1 ]
        | Ml_to -> [ I.local_get 2 ]
        | Ml_amount -> [ I.local_get 3; I.i64_load () ]
        | Ml_memo -> [ I.local_get 4; I.i64_load ~offset:1 () ]
      in
      load_field
      @ [
          I.i64 (Int64.of_int (8 * m.ml_byte)); I.i64_shr_u;
          I.i64 0xFFL; I.i64_and;
          I.i64 (Int64.of_int m.ml_value); I.i64_eq;
          I.if_
            ([ I.local_get 1; I.call imp.i_printi ] @ milestone_code imp rest)
            [ I.local_get 0; I.call imp.i_printi ];
        ]

let check_code (c : check) : Wasm.Ast.instr list =
  let load_field =
    match c.chk_target with
    | Chk_from -> [ I.local_get 1 ]
    | Chk_to -> [ I.local_get 2 ]
    | Chk_amount -> [ I.local_get 3; I.i64_load () ]
    | Chk_symbol -> [ I.local_get 3; I.i64_load ~offset:8 () ]
    | Chk_memo_len -> [ I.local_get 4; I.i32_load8_u (); I.i64_extend_i32_u ]
    | Chk_memo_prefix -> [ I.local_get 4; I.i64_load ~offset:1 () ]
  in
  load_field @ [ I.i64 c.chk_value; I.i64_ne; I.if_ [ I.unreachable ] [] ]

(* The Listing-4 template: blockinfo randomness deciding an inline payout. *)
let lottery_template (spec : spec) imp : Wasm.Ast.instr list =
  let blockinfo_value =
    if spec.sp_blockinfo then
      [ I.call imp.i_tapos_block_prefix; I.call imp.i_tapos_block_num; I.i32_mul ]
      @ (if spec.sp_fair_coin then [] else [ I.i32 1; I.i32_or ])
      @ [ I.i32 2; I.i32_rem_u ]
    else [ I.i32 1 ]
  in
  blockinfo_value
  @ [ I.if_ (payout_code spec imp ~dest_local:1) [] ]

let build_eosponser (spec : spec) imp ~msg_min ~msg_max ~msg_db ~msg_meta :
    Wasm.Ast.instr list =
  (* Every real contract ignores its own outgoing transfers; this also
     stops the payout notification from re-entering the eosponser.  Note
     this compares [from], not [to] — it is NOT the Fake Notif guard. *)
  let skip_self =
    [ I.local_get 1; I.local_get 0; I.i64_eq; I.if_ [ I.return ] [] ]
  in
  let guard_notif =
    if spec.sp_fake_notif_guard then
      (* Listing 2: if (to != _self) return; *)
      [ I.local_get 2; I.local_get 0; I.i64_ne; I.if_ [ I.return ] [] ]
    else []
  in
  let checks = List.concat_map check_code spec.sp_checks in
  let min_bet =
    match spec.sp_min_bet with
    | None -> []
    | Some v ->
        mk_assert imp msg_min
          [ I.local_get 3; I.i64_load (); I.i64 v; I.i64_ge_s ]
  in
  let max_bet =
    match spec.sp_max_bet with
    | None -> []
    | Some v ->
        mk_assert imp msg_max
          [ I.local_get 3; I.i64_load (); I.i64 v; I.i64_le_s ]
  in
  let memo_gate =
    match spec.sp_memo_gate with
    | None -> []
    | Some s ->
        (* memo length must match and its first 8 bytes must equal the
           constant (the CVE-2022-27134 "action:buy" pattern). *)
        let padded = s ^ String.make (max 0 (8 - String.length s)) '\000' in
        let first8 = Abi.read_le padded 0 8 in
        [
          I.local_get 4; I.i32_load8_u (); I.i32 (String.length s); I.i32_ne;
          I.if_ [ I.return ] [];
          I.local_get 4; I.i64_load ~offset:1 (); I.i64 first8; I.i64_ne;
          I.if_ [ I.return ] [];
        ]
    in
  let db_gate =
    if not spec.sp_db_gate then []
    else
      mk_assert imp msg_db
        [
          I.local_get 0; I.local_get 0; I.i64 tbl_players; I.local_get 1;
          I.call imp.i_db_find;
          I.i32 (-1); I.i32_ne;
        ]
      @
      if spec.sp_multi_table then
        mk_assert imp msg_meta
          [
            I.local_get 0; I.local_get 0; I.i64 tbl_meta; I.local_get 1;
            I.call imp.i_db_find;
            I.i32 (-1); I.i32_ne;
          ]
      else []
  in
  let auth = if spec.sp_auth_check then [ I.local_get 1; I.call imp.i_require_auth ] else [] in
  (* The WACANA state-I/O pattern: the eosponser itself records the
     incoming stake under the sender's key (same upsert idiom as
     [build_deposit]), so any forged channel that reaches this point
     persists attacker-controlled state. *)
  let state_write =
    if not spec.sp_state_write then []
    else
      [
        I.i32 scratch_base; I.local_get 3; I.i64_load (); I.i64_store ();
        I.local_get 0; I.local_get 0; I.i64 tbl_players; I.local_get 1;
        I.call imp.i_db_find;
        I.local_tee 6;
        I.i32 (-1); I.i32_eq;
        I.if_
          [
            I.local_get 0; I.i64 tbl_players; I.local_get 0; I.local_get 1;
            I.i32 scratch_base; I.i32 8;
            I.call imp.i_db_store; I.drop;
          ]
          [ I.local_get 6; I.local_get 0; I.i32 scratch_base; I.i32 8;
            I.call imp.i_db_update ];
      ]
  in
  let body =
    if not spec.sp_has_payout then []
    else if spec.sp_dead_template then
      (* Ground-truth negative: the template sits behind contradictory
         equality tests on the same field. *)
      [
        I.local_get 1; I.i64 0x1111L; I.i64_eq;
        I.if_
          [
            I.local_get 1; I.i64 0x2222L; I.i64_eq;
            I.if_ (lottery_template spec imp) [];
          ]
          [];
      ]
    else lottery_template spec imp
  in
  skip_self @ guard_notif @ checks @ min_bet @ max_bet @ memo_gate @ db_gate
  @ auth @ state_write @ body
  @ milestone_code imp spec.sp_milestones

(* ------------------------------------------------------------------ *)
(* auxiliary actions                                                   *)
(* ------------------------------------------------------------------ *)

(* deposit(player = a, amount = b): upsert players[player] = amount. *)
let deposit_auth (spec : spec) =
  match spec.sp_deposit_auth with Some b -> b | None -> spec.sp_auth_check

let build_deposit (spec : spec) imp : Wasm.Ast.instr list =
  let auth =
    if deposit_auth spec then [ I.local_get 1; I.call imp.i_require_auth ]
    else []
  in
  auth
  @ [
      (* mem[scratch] = amount *)
      I.i32 scratch_base; I.local_get 2; I.i64_store ();
      (* itr = db_find(self, self, players, player) *)
      I.local_get 0; I.local_get 0; I.i64 tbl_players; I.local_get 1;
      I.call imp.i_db_find;
      I.local_tee 6;
      I.i32 (-1); I.i32_eq;
      I.if_
        [
          I.local_get 0; I.i64 tbl_players; I.local_get 0; I.local_get 1;
          I.i32 scratch_base; I.i32 8;
          I.call imp.i_db_store; I.drop;
        ]
        [ I.local_get 6; I.local_get 0; I.i32 scratch_base; I.i32 8;
          I.call imp.i_db_update ];
    ]

(* setup(v = a): upsert meta[v] = v.  The row id comes from the action
   parameter, which is what defeats table-granular dependency tracking
   when the eosponser needs meta[from].  Configuration is always owner-
   gated, so it never contributes a missing-auth side effect. *)
let build_setup (_spec : spec) imp : Wasm.Ast.instr list =
  [
    I.local_get 0; I.call imp.i_require_auth;
    I.i32 scratch_base; I.local_get 1; I.i64_store ();
    I.local_get 0; I.local_get 0; I.i64 tbl_meta; I.local_get 1;
    I.call imp.i_db_find;
    I.local_tee 6;
    I.i32 (-1); I.i32_eq;
    I.if_
      [
        I.local_get 0; I.i64 tbl_meta; I.local_get 0; I.local_get 1;
        I.i32 scratch_base; I.i32 8;
        I.call imp.i_db_store; I.drop;
      ]
      [ I.local_get 6; I.local_get 0; I.i32 scratch_base; I.i32 8;
        I.call imp.i_db_update ];
  ]

(* reveal(player = a): carries the Listing-4 template only in the
   admin-gated scenario (the paper's address-pool FN case); otherwise a
   harmless balance peek. *)
let build_reveal (spec : spec) imp : Wasm.Ast.instr list =
  if spec.sp_admin_reveal then
    [ I.i64 admin_account; I.call imp.i_require_auth ]
    @ lottery_template spec imp
  else
    (if deposit_auth spec then [ I.local_get 1; I.call imp.i_require_auth ]
     else [])
    @ [
        I.local_get 0; I.local_get 0; I.i64 tbl_players; I.local_get 1;
        I.call imp.i_db_find; I.drop;
      ]

(* claim(): fold the players table with a db_next loop, printing the sum
   of the recorded deposits — the iteration-heavy trace shape real
   payout-all contracts produce. *)
let build_claim imp : Wasm.Ast.instr list =
  [
    I.i64 0L; I.local_set 5;
    I.local_get 0; I.local_get 0; I.i64 tbl_players; I.i64 0L;
    I.call imp.i_db_lowerbound; I.local_set 6;
    I.block
      [
        I.loop
          [
            (* while (itr >= 0) *)
            I.local_get 6; I.i32 0; I.i32_lt_s; I.br_if 1;
            (* total += players[itr] *)
            I.local_get 6; I.i32 scratch_base; I.i32 8;
            I.call imp.i_db_get; I.drop;
            I.local_get 5; I.i32 scratch_base; I.i64_load (); I.i64_add;
            I.local_set 5;
            (* itr = db_next(itr) *)
            I.local_get 6; I.i32 (scratch_base + 8); I.call imp.i_db_next;
            I.local_set 6;
            I.br 0;
          ];
      ];
    I.local_get 5; I.call imp.i_printi;
  ]

(* ------------------------------------------------------------------ *)
(* dispatcher                                                          *)
(* ------------------------------------------------------------------ *)

(** Build the full contract module and its ABI. *)
let build (spec : spec) : Wasm.Ast.module_ * Abi.t =
  let b = B.create () in
  let imp = declare_imports b in
  B.add_memory b 2;
  (* Data segment: assert messages. *)
  let msg1 = "bet below minimum" and msg2 = "deposit first" and msg3 = "not configured" in
  let msg_min = msg_base in
  let msg_db = msg_base + String.length msg1 + 1 in
  let msg_meta = msg_db + String.length msg2 + 1 in
  B.add_data b ~offset:msg_min (msg1 ^ "\000");
  B.add_data b ~offset:msg_db (msg2 ^ "\000");
  B.add_data b ~offset:msg_meta (msg3 ^ "\000");
  (* The max-bet message segment is only emitted when the cap is in use,
     so modules built from pre-existing specs stay bit-identical. *)
  let msg4 = "bet above maximum" in
  let msg_max = msg_meta + String.length msg3 + 1 in
  (match spec.sp_max_bet with
   | Some _ -> B.add_data b ~offset:msg_max (msg4 ^ "\000")
   | None -> ());
  let extra_locals = [ T.I64; T.I32 ] in
  let eosponser =
    B.add_func b ~name:"eosponser" ~locals:extra_locals action_sig
      (build_eosponser spec imp ~msg_min ~msg_max ~msg_db ~msg_meta)
  in
  let deposit =
    B.add_func b ~name:"deposit" ~locals:extra_locals action_sig
      (build_deposit spec imp)
  in
  let setup =
    B.add_func b ~name:"setup" ~locals:extra_locals action_sig
      (build_setup spec imp)
  in
  let reveal =
    B.add_func b ~name:"reveal" ~locals:extra_locals action_sig
      (build_reveal spec imp)
  in
  let claim =
    if spec.sp_claim_loop then
      Some
        (B.add_func b ~name:"claim" ~locals:extra_locals action_sig
           (build_claim imp))
    else None
  in
  (* Dispatcher.  Locals: 0 receiver, 1 code, 2 action, 3 i32 scratch. *)
  let read_input =
    [
      I.i32 action_data_base;
      I.call imp.i_action_data_size;
      I.call imp.i_read_action_data;
      I.drop;
    ]
  in
  let push_action_args =
    [
      I.local_get 0;
      I.i32 action_data_base; I.i64_load ();
      I.i32 action_data_base; I.i64_load ~offset:8 ();
      I.i32 (action_data_base + 16);
      I.i32 (action_data_base + 32);
    ]
  in
  let call_action =
    match spec.sp_dispatcher with
    | Direct -> fun idx -> [ I.call idx ]
    | Indirect ->
        let ti = B.add_type b action_sig in
        fun idx ->
          (* The SDK's indirect-call pattern: function id through the table. *)
          let table_slot =
            if idx = eosponser then 0
            else if idx = deposit then 1
            else if idx = setup then 2
            else if idx = reveal then 3
            else 4
          in
          [ I.i32 table_slot; I.call_indirect ti ]
  in
  (match spec.sp_dispatcher with
   | Indirect ->
       B.add_elem b ~offset:0
         ([ eosponser; deposit; setup; reveal ]
         @ match claim with Some c -> [ c ] | None -> [])
   | Direct -> ());
  let dispatch_named name idx =
    [
      I.local_get 2; I.i64 name; I.i64_eq;
      I.if_ (read_input @ push_action_args @ call_action idx) [];
    ]
  in
  let eos_guard =
    if not spec.sp_fake_eos_guard then []
    else if spec.sp_confused_dispatcher then
      (* The EVulHunter confusion: the guard accepts [code == _self] as
         an alternative, so a [transfer] action pushed directly at the
         contract sails through the eosio.token comparison. *)
      let confused_cond =
        [
          I.local_get 1; I.i64 Name.eosio_token; I.i64_eq;
          I.local_get 1; I.local_get 0; I.i64_eq;
          I.i32_or;
        ]
      in
      match spec.sp_eos_guard_style with
      | Guard_assert -> mk_assert imp msg_meta confused_cond
      | Guard_if_return ->
          confused_cond @ [ I.i32_eqz; I.if_ [ I.return ] [] ]
    else
      match spec.sp_eos_guard_style with
      | Guard_assert ->
          (* Listing 1's patch: assert(code == N(eosio.token)). *)
          mk_assert imp msg_meta
            [ I.local_get 1; I.i64 Name.eosio_token; I.i64_eq ]
      | Guard_if_return ->
          [
            I.local_get 1; I.i64 Name.eosio_token; I.i64_ne;
            I.if_ [ I.return ] [];
          ]
  in
  (* Console logging of every incoming action: a common bookkeeping
     pattern, and the honeypot-ish signal that misleads success-based
     oracles. *)
  let log_notif =
    if spec.sp_log_notifications then [ I.local_get 2; I.call imp.i_printi ]
    else []
  in
  let apply_body =
    log_notif
    @ [
      I.local_get 2; I.i64 Name.transfer; I.i64_eq;
      I.if_
        (eos_guard @ read_input @ push_action_args @ call_action eosponser
        @ [ I.return ])
        [];
      (* Other actions only when addressed directly: code == receiver. *)
      I.local_get 1; I.local_get 0; I.i64_eq;
      I.if_
        (dispatch_named act_deposit deposit
        @ dispatch_named act_setup setup
        @ dispatch_named act_reveal reveal
        @ (match claim with
           | Some c -> dispatch_named act_claim c
           | None -> []))
        [];
    ]
  in
  let apply =
    B.add_func b ~name:"apply" ~locals:[ T.I32 ]
      (T.func_type [ T.I64; T.I64; T.I64 ])
      apply_body
  in
  B.export_func b "apply" apply;
  let m = B.build b in
  Wasm.Validate.check_module m;
  let abi =
    (* The shared default action set (transfer/deposit/setup/reveal) lives
       in [Abi.default_profitable]; only the optional claim loop is
       template-specific. *)
    {
      Abi.abi_actions =
        Abi.default_profitable.Abi.abi_actions
        @
        (if spec.sp_claim_loop then
           [ { Abi.act_name = act_claim; act_params = [] } ]
         else []);
    }
  in
  (m, abi)

(* ------------------------------------------------------------------ *)
(* Ground truth                                                        *)
(* ------------------------------------------------------------------ *)

type vuln =
  | Fake_eos
  | Fake_notif
  | Miss_auth
  | Blockinfo_dep
  | Rollback
  | State_io
  | Fake_transfer
  | Asset_overflow

let string_of_vuln = function
  | Fake_eos -> "FakeEOS"
  | Fake_notif -> "FakeNotif"
  | Miss_auth -> "MissAuth"
  | Blockinfo_dep -> "BlockinfoDep"
  | Rollback -> "Rollback"
  | State_io -> "StateIo"
  | Fake_transfer -> "FakeTransfer"
  | Asset_overflow -> "AssetOverflow"

let all_vulns =
  [
    Fake_eos; Fake_notif; Miss_auth; Blockinfo_dep; Rollback; State_io;
    Fake_transfer; Asset_overflow;
  ]

(* Is the eosponser's payout template reachable at all? *)
let template_reachable (s : spec) = s.sp_has_payout && not s.sp_dead_template

(** Ground-truth vulnerability labels implied by a spec. *)
let ground_truth (s : spec) (v : vuln) : bool =
  match v with
  | Fake_eos -> not s.sp_fake_eos_guard
  | Fake_notif -> not s.sp_fake_notif_guard
  | Miss_auth ->
      (* Without the auth switch, the deposit DB write (unless separately
         authenticated) and any payout execute with no prior permission
         check. *)
      (not s.sp_auth_check)
      && ((not (deposit_auth s)) || template_reachable s || s.sp_admin_reveal)
  | Blockinfo_dep ->
      s.sp_blockinfo && (template_reachable s || s.sp_admin_reveal)
  | Rollback ->
      s.sp_payout_inline && (template_reachable s || s.sp_admin_reveal)
  | State_io ->
      (* The eosponser's own DB write is reachable from a forged channel:
         a counterfeit token (no Listing-1 guard), a forwarded
         notification (no Listing-2 guard), or a direct action let in by
         the confused dispatcher. *)
      s.sp_state_write
      && ((not s.sp_fake_eos_guard)
         || (not s.sp_fake_notif_guard)
         || s.sp_confused_dispatcher)
  | Fake_transfer ->
      (* The dispatcher compares [code] against eosio.token but accepts
         the self-escape, so a direct forged transfer runs the eosponser
         despite the comparison being present. *)
      s.sp_fake_eos_guard && s.sp_confused_dispatcher
  | Asset_overflow ->
      s.sp_payout_multiplier <> None
      && s.sp_max_bet = None
      && (template_reachable s || s.sp_admin_reveal)
