lib/wasm/text.ml: Ast Buffer Builder Char Hashtbl Int32 Int64 List Printf String Types Validate Values
