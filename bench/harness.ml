(** Shared machinery for the evaluation harness: running the three tools
    over a corpus and printing paper-style P/R/F1 tables with the paper's
    reference numbers alongside. *)

open Wasai_support
module BG = Wasai_benchgen
module Core = Wasai_core
module BL = Wasai_baselines

type options = {
  opt_scale : int;  (** corpus divisor (1 = the full paper-sized corpus) *)
  opt_rounds : int;  (** fuzzing iterations per contract *)
  opt_fig3_contracts : int;
  opt_seed : int64;
  opt_backend : Core.Exec_backend.choice;
      (** execution tier every WASAI run in the harness uses *)
}

let default_options =
  {
    opt_scale = 20;
    opt_rounds = 24;
    opt_fig3_contracts = 30;
    opt_seed = 42L;
    opt_backend = Core.Exec_backend.Auto;
  }

let flag_of_class = function
  | BG.Contracts.Fake_eos -> Core.Scanner.Fake_eos
  | BG.Contracts.Fake_notif -> Core.Scanner.Fake_notif
  | BG.Contracts.Miss_auth -> Core.Scanner.Miss_auth
  | BG.Contracts.Blockinfo_dep -> Core.Scanner.Blockinfo_dep
  | BG.Contracts.Rollback -> Core.Scanner.Rollback
  | BG.Contracts.State_io -> Core.Scanner.State_io
  | BG.Contracts.Fake_transfer -> Core.Scanner.Fake_transfer
  | BG.Contracts.Asset_overflow -> Core.Scanner.Asset_overflow

let target_of_sample (s : BG.Corpus.sample) : Core.Engine.target =
  {
    Core.Engine.tgt_account = s.BG.Corpus.smp_spec.BG.Contracts.sp_account;
    tgt_module = s.BG.Corpus.smp_module;
    tgt_abi = s.BG.Corpus.smp_abi;
  }

type tool_verdict = Core.Scanner.flag -> bool option

(* Run WASAI on one sample. *)
let run_wasai ~rounds ?(backend = Core.Exec_backend.Auto) (s : BG.Corpus.sample)
    : tool_verdict =
  let o =
    Core.Engine.fuzz
      ~cfg:
        (Core.Engine.make_config ~rounds
           ~rng_seed:(Int64.of_int s.BG.Corpus.smp_id)
           ~backend ())
      (target_of_sample s)
  in
  fun f -> Some (Core.Engine.flagged o f)

let run_eosfuzzer ~rounds (s : BG.Corpus.sample) : tool_verdict =
  let o =
    BL.Eosfuzzer.fuzz ~rounds
      ~rng_seed:(Int64.of_int ((s.BG.Corpus.smp_id * 31) + 7))
      (target_of_sample s)
  in
  fun f -> BL.Eosfuzzer.flagged o f

let run_eosafe (s : BG.Corpus.sample) : tool_verdict =
  let v = BL.Eosafe.analyze s.BG.Corpus.smp_module in
  let flags = BL.Eosafe.flags v in
  fun f -> Option.join (List.assoc_opt f flags)

(* ------------------------------------------------------------------ *)
(* Accuracy tables (Tables 4/5/6)                                      *)
(* ------------------------------------------------------------------ *)

type table_row = {
  row_class : BG.Contracts.vuln;
  row_count : int;
  row_cells : (string * Metrics.confusion option) list;  (** per tool *)
}

let tools = [ "WASAI"; "EOSFuzzer"; "EOSAFE" ]

let evaluate_corpus ~(rounds : int) ?(backend = Core.Exec_backend.Auto)
    (corpus : BG.Corpus.sample list) : table_row list =
  let conf : (string * BG.Contracts.vuln, Metrics.confusion) Hashtbl.t =
    Hashtbl.create 32
  in
  let get tool cls =
    match Hashtbl.find_opt conf (tool, cls) with
    | Some c -> c
    | None ->
        let c = Metrics.empty () in
        Hashtbl.replace conf (tool, cls) c;
        c
  in
  let n = List.length corpus in
  List.iteri
    (fun i (s : BG.Corpus.sample) ->
      if i mod 50 = 0 then
        Printf.eprintf "  [%d/%d] fuzzing %s...\n%!" i n
          (Wasai_eosio.Name.to_string s.BG.Corpus.smp_spec.BG.Contracts.sp_account);
      let flag = flag_of_class s.BG.Corpus.smp_class in
      let record tool verdict =
        match verdict flag with
        | Some predicted ->
            Metrics.record (get tool s.BG.Corpus.smp_class)
              ~truth:s.BG.Corpus.smp_truth ~predicted
        | None -> ()
      in
      record "WASAI" (run_wasai ~rounds ~backend s);
      record "EOSFuzzer" (run_eosfuzzer ~rounds s);
      record "EOSAFE" (run_eosafe s))
    corpus;
  let counts = Hashtbl.create 8 in
  List.iter
    (fun (s : BG.Corpus.sample) ->
      Hashtbl.replace counts s.BG.Corpus.smp_class
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts s.BG.Corpus.smp_class)))
    corpus;
  List.filter_map
    (fun (cls, _) ->
      match Hashtbl.find_opt counts cls with
      | None -> None
      | Some count ->
          Some
            {
              row_class = cls;
              row_count = count;
              row_cells =
                List.map (fun tool -> (tool, Hashtbl.find_opt conf (tool, cls))) tools;
            })
    (BG.Corpus.paper_counts @ BG.Corpus.extension_counts)

(* Paper reference cells: (P, R, F1) as percentages; None = unsupported. *)
type paper_cell = (float * float * float) option

let print_table ~(title : string)
    ~(paper : (BG.Contracts.vuln * paper_cell list) list)
    (rows : table_row list) =
  Printf.printf "\n=== %s ===\n" title;
  Printf.printf "%-14s %-7s" "Class" "#";
  List.iter (fun t -> Printf.printf "| %-26s " t) tools;
  Printf.printf "\n%-22s" "";
  List.iter (fun _ -> Printf.printf "| %-26s " "P      R      F1") tools;
  print_newline ();
  let totals = List.map (fun t -> (t, Metrics.empty ())) tools in
  List.iter
    (fun row ->
      Printf.printf "%-14s %-7d"
        (BG.Contracts.string_of_vuln row.row_class)
        row.row_count;
      List.iter
        (fun (tool, cell) ->
          match cell with
          | Some c ->
              Metrics.(
                Printf.printf "| %-8s %-6s %-9s "
                  (pct_string (precision c))
                  (pct_string (recall c))
                  (pct_string (f1 c)));
              let tc = List.assoc tool totals in
              tc.Metrics.tp <- tc.Metrics.tp + c.Metrics.tp;
              tc.Metrics.fp <- tc.Metrics.fp + c.Metrics.fp;
              tc.Metrics.tn <- tc.Metrics.tn + c.Metrics.tn;
              tc.Metrics.fn <- tc.Metrics.fn + c.Metrics.fn
          | None -> Printf.printf "| %-26s " "-")
        row.row_cells;
      (* paper reference line *)
      print_newline ();
      (match List.assoc_opt row.row_class paper with
       | Some cells ->
           Printf.printf "%-22s" "  (paper)";
           List.iter
             (function
               | Some (p, r, f) ->
                   Printf.printf "| %-8s %-6s %-9s "
                     (Printf.sprintf "%.1f%%" p) (Printf.sprintf "%.1f%%" r)
                     (Printf.sprintf "%.1f%%" f)
               | None -> Printf.printf "| %-26s " "-")
             cells
       | None -> ());
      print_newline ())
    rows;
  Printf.printf "%-22s" "Total";
  List.iter
    (fun (_, c) ->
      Metrics.(
        Printf.printf "| %-8s %-6s %-9s "
          (pct_string (precision c))
          (pct_string (recall c))
          (pct_string (f1 c))))
    totals;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Machine-readable results (--json FILE)                              *)
(* ------------------------------------------------------------------ *)

(* Collected alongside the text scoreboard and flushed as one JSON
   document when the harness was invoked with [--json FILE].  Each
   experiment contributes its headline metrics plus every bound it
   asserts (the conditions that make the smoke pass or fail), so CI can
   trend the numbers without scraping the prose. *)

type json_bound = {
  jb_name : string;  (** what is being asserted, e.g. "overhead" *)
  jb_bound : string;  (** the bound itself, e.g. "<= 1.03x" *)
  jb_pass : bool;
}

type json_result = {
  jr_experiment : string;
  jr_metrics : (string * float) list;
  jr_bounds : json_bound list;
}

let json_path : string option ref = ref None
let json_results : json_result list ref = ref []

let json_record ~experiment ?(bounds = []) metrics =
  if !json_path <> None then
    json_results :=
      { jr_experiment = experiment; jr_metrics = metrics; jr_bounds = bounds }
      :: !json_results

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* JSON has no NaN/Infinity literals; non-finite metrics become null. *)
let json_float v =
  if not (Float.is_finite v) then "null"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let json_flush () =
  match !json_path with
  | None -> ()
  | Some path ->
      let b = Buffer.create 4096 in
      Buffer.add_string b "{\n  \"schema\": \"wasai-bench-v1\",\n  \"results\": [";
      List.iteri
        (fun i r ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b
            (Printf.sprintf "\n    {\n      \"experiment\": \"%s\",\n      \"metrics\": {"
               (json_escape r.jr_experiment));
          List.iteri
            (fun j (k, v) ->
              if j > 0 then Buffer.add_char b ',';
              Buffer.add_string b
                (Printf.sprintf "\n        \"%s\": %s" (json_escape k)
                   (json_float v)))
            r.jr_metrics;
          Buffer.add_string b "\n      },\n      \"bounds\": [";
          List.iteri
            (fun j bd ->
              if j > 0 then Buffer.add_char b ',';
              Buffer.add_string b
                (Printf.sprintf
                   "\n        { \"name\": \"%s\", \"bound\": \"%s\", \"pass\": %b }"
                   (json_escape bd.jb_name) (json_escape bd.jb_bound)
                   bd.jb_pass))
            r.jr_bounds;
          Buffer.add_string b "\n      ]\n    }")
        (List.rev !json_results);
      Buffer.add_string b "\n  ]\n}\n";
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc (Buffer.contents b));
      Printf.printf "\nwrote %d experiment result(s) to %s\n"
        (List.length !json_results) path

(* Paper numbers, Tables 4, 5 and 6. *)
let paper_table4 : (BG.Contracts.vuln * paper_cell list) list =
  [
    (BG.Contracts.Fake_eos,
     [ Some (100., 100., 100.); Some (90.7, 84.3, 87.3); Some (98.3, 44.9, 61.6) ]);
    (BG.Contracts.Fake_notif,
     [ Some (100., 100., 100.); Some (94.9, 78.7, 86.0); Some (67.4, 98.3, 79.9) ]);
    (BG.Contracts.Miss_auth,
     [ Some (100., 96.0, 97.9); None; Some (100., 38.9, 56.0) ]);
    (BG.Contracts.Blockinfo_dep,
     [ Some (100., 100., 100.); Some (0., 0., 0.); None ]);
    (BG.Contracts.Rollback,
     [ Some (100., 95.7, 97.8); None; Some (50.5, 97.6, 66.6) ]);
  ]

let paper_table5 : (BG.Contracts.vuln * paper_cell list) list =
  [
    (BG.Contracts.Fake_eos,
     [ Some (100., 100., 100.); Some (91.4, 92.1, 91.8); Some (0., 0., 0.) ]);
    (BG.Contracts.Fake_notif,
     [ Some (92.4, 100., 96.0); Some (94.6, 78.1, 85.5); Some (67.5, 98.4, 80.0) ]);
    (BG.Contracts.Miss_auth,
     [ Some (100., 94.2, 97.0); None; Some (0., 0., 0.) ]);
    (BG.Contracts.Blockinfo_dep,
     [ Some (100., 100., 100.); Some (0., 0., 0.); None ]);
    (BG.Contracts.Rollback,
     [ Some (100., 95.7, 97.8); None; Some (50.4, 97.1, 66.3) ]);
  ]

let paper_table6 : (BG.Contracts.vuln * paper_cell list) list =
  [
    (BG.Contracts.Fake_eos,
     [ Some (100., 100., 100.); Some (50.0, 100., 66.7); Some (100., 43.2, 60.3) ]);
    (BG.Contracts.Fake_notif,
     [ Some (99.6, 83.0, 90.6); Some (0., 0., 0.); Some (68.1, 99.3, 80.8) ]);
    (BG.Contracts.Miss_auth,
     [ Some (100., 97.4, 98.7); None; Some (100., 40.5, 57.6) ]);
    (BG.Contracts.Blockinfo_dep,
     [ Some (100., 100., 100.); Some (0., 0., 0.); None ]);
    (BG.Contracts.Rollback,
     [ Some (100., 100., 100.); None; Some (50.0, 100., 66.7) ]);
  ]
