(** Constraint-solving entry point: decides a conjunction of width-1
    constraints and produces a model.

    Two tiers: a propagation quick-path for the
    "invertible term == constant" chains that verification-style contracts
    produce, and full bit-blasting + CDCL for everything else under a
    deterministic conflict budget.

    All accounting is per {!Session} — there is no global mutable solver
    state.  A session belongs to one engine run on one domain; it carries
    the conflict budget, the solve counters, and a bounded LRU cache of
    decided constraint sets keyed on their canonical (sorted-tag multiset)
    form.  Cache hits return the memoized Sat model or Unsat verdict
    without re-blasting; Unknown is never cached.  Exact misses are
    additionally screened against the cached Unsat sets: a query whose
    key contains a cached Unsat set as a sub-multiset is answered Unsat
    without solving (see {!Session.subsumed}). *)

type model = (int, int64) Hashtbl.t
(** Expression variable id -> value. *)

type result =
  | Sat of model
  | Unsat
  | Unknown  (** budget exhausted *)

type stats = {
  st_quick : int;  (** solved by the propagation quick-path *)
  st_blasted : int;  (** reached bit-blasting + CDCL *)
  st_unknown : int;  (** blasted and still undecided at the budget *)
  st_cache_hits : int;
  st_cache_misses : int;
}
(** Immutable snapshot of a session's counters.  [st_quick] and
    [st_blasted] count solver runs, so a cache hit increments neither;
    queries decided trivially (a constant-false constraint) count as
    none of these. *)

val stats_zero : stats
val stats_add : stats -> stats -> stats

module Session : sig
  type t
  (** Per-engine-run solver context: conflict budget + counters + LRU
      verdict cache.  Confined to the creating domain; never share a
      session across campaign workers. *)

  val create : ?conflict_budget:int -> ?cache_capacity:int -> unit -> t
  (** [conflict_budget] defaults to 50_000 CDCL conflicts;
      [cache_capacity] (default 512 entries) bounds the LRU —
      [cache_capacity:0] disables caching, which turns every query into
      a recorded miss (useful as an ablation baseline).  Creation also
      compacts the domain's expression intern table if it has outgrown
      its threshold: the session boundary is the only point where that
      cannot degrade sharing within a cached workload. *)

  val conflict_budget : t -> int

  val set_conflict_budget : t -> int -> unit
  (** Retune the session's conflict budget mid-run (the engine's adaptive
      budget uses this).  Sound with respect to the verdict cache: Sat and
      Unsat verdicts are budget-independent, and Unknown — the only
      budget-dependent verdict — is never cached, so a cached answer can
      never contradict what a re-solve under the new budget would say.
      Raises [Invalid_argument] when the budget is < 1. *)

  val stats : t -> stats

  val subsumed : t -> int
  (** Queries answered Unsat by subsumption: the query missed the cache
      exactly but some cached Unsat constraint set was a sub-multiset of
      its key, and a superset of an unsatisfiable conjunction is
      unsatisfiable.  Subsumed answers also count in
      [stats.st_cache_hits] (blasting was avoided); they never refresh
      the matching entry's LRU position and are never themselves
      inserted, keeping cache evolution independent of table iteration
      order (and hence of scheduling-dependent expression tags). *)
end

val check : ?session:Session.t -> ?conflict_budget:int -> Expr.t list -> result
(** Decide the conjunction of constraints.  With [~session], the solve is
    accounted to (and cached in) the session, and the session's budget
    applies unless [?conflict_budget] overrides it.  Cached Sat models
    are returned as fresh tables — callers may mutate them freely. *)

val validate_model : Expr.t list -> model -> bool
(** Re-evaluate the constraints under a model (defence in depth: the
    engine refuses to trust unverified seeds). *)
