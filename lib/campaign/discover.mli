(** Campaign input discovery: turn a directory of [.wasm]/[.wat] contract
    files (with optional [<file>.abi] / [<base>.abi] sidecars in the
    {!Wasai_eosio.Abi.of_text} format) into campaign targets.

    Each file's deployment account is derived deterministically from its
    basename ({!account_of_filename}), so per-target RNG seeds — and hence
    verdicts — are stable across reorderings, resumptions and machines. *)

module Core = Wasai_core

val account_of_filename : string -> Wasai_eosio.Name.t
(** Deterministic mapping of a file basename (extension dropped) onto the
    12-char EOSIO name alphabet.  Characters outside the alphabet are
    substituted deterministically; the result is truncated to 12 chars. *)

val default_abi : Wasai_eosio.Abi.t
(** The canonical profitable-contract ABI (transfer/deposit/setup/reveal)
    used when a contract ships no ABI sidecar. *)

val dir : string -> Campaign.target_spec list
(** All [*.wasm] and [*.wat] files under [path] (not recursive), sorted by
    filename; [sp_size] is the file's byte size (the campaign's
    biggest-first scheduling heuristic) and parsing is deferred to the
    worker via [sp_load].  Raises
    [Failure] when two files map to the same account name (rename one:
    campaign journals are keyed by the derived name) and [Sys_error] when
    the directory cannot be read. *)
