(** CDCL SAT solver (MiniSat-style): two-literal watching, first-UIP
    conflict analysis, VSIDS branching with an activity heap, and Luby
    restarts.  A conflict budget stands in for the paper's 3,000 ms
    per-query cap: deterministic, so experiments reproduce exactly.

    Literal encoding: variable [v] (0-based) has positive literal [2v] and
    negative literal [2v+1]; negation is [lxor 1]. *)

type result = Sat | Unsat | Unknown

type clause = {
  lits : int array;  (** watched literals are lits.(0) and lits.(1) *)
  learnt : bool;
  mutable cact : float;
}

(* Growable int/clause vectors. *)
module Vec = struct
  type 'a t = { mutable data : 'a array; mutable size : int; dummy : 'a }

  let create dummy = { data = Array.make 16 dummy; size = 0; dummy }

  let push v x =
    if v.size = Array.length v.data then begin
      let bigger = Array.make (2 * v.size) v.dummy in
      Array.blit v.data 0 bigger 0 v.size;
      v.data <- bigger
    end;
    v.data.(v.size) <- x;
    v.size <- v.size + 1

  let get v i = v.data.(i)
  let set v i x = v.data.(i) <- x
  let size v = v.size
  let shrink v n = v.size <- n
  let _clear v = v.size <- 0
end

type t = {
  mutable nvars : int;
  clauses : clause Vec.t;
  learnts : clause Vec.t;
  mutable watches : clause Vec.t array;  (** indexed by literal *)
  mutable assign : int array;  (** -1 unassigned, else 0/1 *)
  mutable level : int array;
  mutable reason : clause option array;
  mutable activity : float array;
  mutable polarity : bool array;  (** phase saving *)
  trail : int Vec.t;  (** assigned literals in order *)
  trail_lim : int Vec.t;  (** decision-level boundaries *)
  mutable qhead : int;
  mutable var_inc : float;
  mutable cla_inc : float;
  (* Activity-ordered heap of candidate decision variables. *)
  mutable heap : int array;
  mutable heap_size : int;
  mutable heap_pos : int array;  (** -1 when not in heap *)
  mutable ok : bool;
  mutable conflicts : int;
}

let dummy_clause = { lits = [||]; learnt = false; cact = 0.0 }

let create () =
  {
    nvars = 0;
    clauses = Vec.create dummy_clause;
    learnts = Vec.create dummy_clause;
    watches = Array.init 2 (fun _ -> Vec.create dummy_clause);
    assign = Array.make 1 (-1);
    level = Array.make 1 0;
    reason = Array.make 1 None;
    activity = Array.make 1 0.0;
    polarity = Array.make 1 false;
    trail = Vec.create 0;
    trail_lim = Vec.create 0;
    qhead = 0;
    var_inc = 1.0;
    cla_inc = 1.0;
    heap = Array.make 1 0;
    heap_size = 0;
    heap_pos = Array.make 1 (-1);
    ok = true;
    conflicts = 0;
  }

(* ---- variable/literal helpers ------------------------------------- *)

let lit_of_var v ~positive = if positive then 2 * v else (2 * v) + 1
let var_of_lit l = l lsr 1
let neg l = l lxor 1

(* Value of a literal: -1 unassigned, 0 false, 1 true. *)
let lit_value s l =
  let a = s.assign.(var_of_lit l) in
  if a < 0 then -1 else a lxor (l land 1)

(* ---- heap --------------------------------------------------------- *)

let heap_swap s i j =
  let a = s.heap.(i) and b = s.heap.(j) in
  s.heap.(i) <- b;
  s.heap.(j) <- a;
  s.heap_pos.(b) <- i;
  s.heap_pos.(a) <- j

let rec heap_up s i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if s.activity.(s.heap.(i)) > s.activity.(s.heap.(p)) then begin
      heap_swap s i p;
      heap_up s p
    end
  end

let rec heap_down s i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < s.heap_size && s.activity.(s.heap.(l)) > s.activity.(s.heap.(!best))
  then best := l;
  if r < s.heap_size && s.activity.(s.heap.(r)) > s.activity.(s.heap.(!best))
  then best := r;
  if !best <> i then begin
    heap_swap s i !best;
    heap_down s !best
  end

let heap_insert s v =
  if s.heap_pos.(v) < 0 then begin
    if s.heap_size = Array.length s.heap then begin
      let bigger = Array.make (2 * s.heap_size) 0 in
      Array.blit s.heap 0 bigger 0 s.heap_size;
      s.heap <- bigger
    end;
    s.heap.(s.heap_size) <- v;
    s.heap_pos.(v) <- s.heap_size;
    s.heap_size <- s.heap_size + 1;
    heap_up s (s.heap_size - 1)
  end

let heap_pop s =
  let v = s.heap.(0) in
  s.heap_pos.(v) <- -1;
  s.heap_size <- s.heap_size - 1;
  if s.heap_size > 0 then begin
    s.heap.(0) <- s.heap.(s.heap_size);
    s.heap_pos.(s.heap.(0)) <- 0;
    heap_down s 0
  end;
  v

(* ---- variable allocation ------------------------------------------ *)

let grow_array a n dflt =
  let b = Array.make n dflt in
  Array.blit a 0 b 0 (Array.length a);
  b

let new_var s : int =
  let v = s.nvars in
  s.nvars <- v + 1;
  if s.nvars > Array.length s.assign then begin
    let n = 2 * s.nvars in
    s.assign <- grow_array s.assign n (-1);
    s.level <- grow_array s.level n 0;
    s.reason <- grow_array s.reason n None;
    s.activity <- grow_array s.activity n 0.0;
    s.polarity <- grow_array s.polarity n false;
    s.heap_pos <- grow_array s.heap_pos n (-1);
    let w = Array.init (2 * n) (fun _ -> Vec.create dummy_clause) in
    Array.blit s.watches 0 w 0 (Array.length s.watches);
    s.watches <- w
  end;
  heap_insert s v;
  v

(* ---- assignment --------------------------------------------------- *)

let decision_level s = Vec.size s.trail_lim

let enqueue s l reason =
  let v = var_of_lit l in
  s.assign.(v) <- 1 lxor (l land 1);
  s.level.(v) <- decision_level s;
  s.reason.(v) <- reason;
  Vec.push s.trail l

let var_bump s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 0 to s.nvars - 1 do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  if s.heap_pos.(v) >= 0 then heap_up s s.heap_pos.(v)

let var_decay s = s.var_inc <- s.var_inc /. 0.95

(* ---- clauses ------------------------------------------------------ *)

let watch s l c = Vec.push s.watches.(l) c

(** Add a clause; returns false if the instance is already unsat. *)
let add_clause s (lits : int list) : bool =
  if not s.ok then false
  else begin
    (* Remove duplicates and true/false literals at level 0. *)
    let lits = List.sort_uniq compare lits in
    let tautology =
      List.exists (fun l -> List.mem (neg l) lits || lit_value s l = 1) lits
    in
    if tautology then true
    else begin
      let lits = List.filter (fun l -> lit_value s l <> 0) lits in
      match lits with
      | [] ->
          s.ok <- false;
          false
      | [ l ] ->
          enqueue s l None;
          true
      | _ ->
          let c = { lits = Array.of_list lits; learnt = false; cact = 0.0 } in
          Vec.push s.clauses c;
          watch s (neg c.lits.(0)) c;
          watch s (neg c.lits.(1)) c;
          true
    end
  end

(* ---- propagation --------------------------------------------------- *)

exception Conflict of clause

let propagate s : clause option =
  try
    while s.qhead < Vec.size s.trail do
      let l = Vec.get s.trail s.qhead in
      s.qhead <- s.qhead + 1;
      (* Clauses watching (neg l) may become unit/conflicting. *)
      let ws = s.watches.(l) in
      let n = Vec.size ws in
      let keep = ref 0 in
      let i = ref 0 in
      (try
         while !i < n do
           let c = Vec.get ws !i in
           incr i;
           (* Make sure the false literal is lits.(1). *)
           if c.lits.(0) = neg l then begin
             c.lits.(0) <- c.lits.(1);
             c.lits.(1) <- neg l
           end;
           if lit_value s c.lits.(0) = 1 then begin
             (* Clause satisfied; keep the watch. *)
             Vec.set ws !keep c;
             incr keep
           end
           else begin
             (* Look for a new watch. *)
             let found = ref false in
             let k = ref 2 in
             while (not !found) && !k < Array.length c.lits do
               if lit_value s c.lits.(!k) <> 0 then begin
                 let tmp = c.lits.(1) in
                 c.lits.(1) <- c.lits.(!k);
                 c.lits.(!k) <- tmp;
                 watch s (neg c.lits.(1)) c;
                 found := true
               end;
               incr k
             done;
             if not !found then begin
               (* Unit or conflict. *)
               Vec.set ws !keep c;
               incr keep;
               if lit_value s c.lits.(0) = 0 then begin
                 (* Conflict: keep remaining watches then bail. *)
                 while !i < n do
                   Vec.set ws !keep (Vec.get ws !i);
                   incr keep;
                   incr i
                 done;
                 Vec.shrink ws !keep;
                 s.qhead <- Vec.size s.trail;
                 raise (Conflict c)
               end
               else enqueue s c.lits.(0) (Some c)
             end
           end
         done;
         Vec.shrink ws !keep
       with Conflict _ as e -> raise e)
    done;
    None
  with Conflict c -> Some c

(* ---- conflict analysis --------------------------------------------- *)

let cla_bump s c =
  c.cact <- c.cact +. s.cla_inc;
  if c.cact > 1e20 then begin
    for i = 0 to Vec.size s.learnts - 1 do
      let d = Vec.get s.learnts i in
      d.cact <- d.cact *. 1e-20
    done;
    s.cla_inc <- s.cla_inc *. 1e-20
  end

(** First-UIP learning; returns (learnt clause lits with asserting literal
    first, backtrack level). *)
let analyze s (confl : clause) : int list * int =
  let seen = Array.make s.nvars false in
  let learnt = ref [] in
  let counter = ref 0 in
  let p = ref (-1) in
  let confl = ref (Some confl) in
  let idx = ref (Vec.size s.trail - 1) in
  let btlevel = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    (match !confl with
     | None -> assert false
     | Some c ->
         if c.learnt then cla_bump s c;
         Array.iter
           (fun q ->
             if q <> !p then begin
               let v = var_of_lit q in
               if (not seen.(v)) && s.level.(v) > 0 then begin
                 seen.(v) <- true;
                 var_bump s v;
                 if s.level.(v) >= decision_level s then incr counter
                 else begin
                   learnt := q :: !learnt;
                   if s.level.(v) > !btlevel then btlevel := s.level.(v)
                 end
               end
             end)
           c.lits);
    (* Select next literal to look at. *)
    let rec skip () =
      let l = Vec.get s.trail !idx in
      if not seen.(var_of_lit l) then begin
        decr idx;
        skip ()
      end
      else l
    in
    let l = skip () in
    decr idx;
    p := l;
    confl := s.reason.(var_of_lit l);
    seen.(var_of_lit l) <- false;
    decr counter;
    if !counter = 0 then continue_ := false
  done;
  (neg !p :: !learnt, !btlevel)

let cancel_until s lvl =
  if decision_level s > lvl then begin
    let bound = Vec.get s.trail_lim lvl in
    for i = Vec.size s.trail - 1 downto bound do
      let l = Vec.get s.trail i in
      let v = var_of_lit l in
      s.polarity.(v) <- s.assign.(v) = 1;
      s.assign.(v) <- -1;
      s.reason.(v) <- None;
      heap_insert s v
    done;
    Vec.shrink s.trail bound;
    Vec.shrink s.trail_lim lvl;
    s.qhead <- Vec.size s.trail
  end

let record_learnt s lits =
  match lits with
  | [ l ] -> enqueue s l None
  | l :: _ ->
      let c = { lits = Array.of_list lits; learnt = true; cact = 0.0 } in
      (* Second watch should be a literal from the conflict level. *)
      let arr = c.lits in
      let max_i = ref 1 in
      for i = 1 to Array.length arr - 1 do
        if s.level.(var_of_lit arr.(i)) > s.level.(var_of_lit arr.(!max_i)) then
          max_i := i
      done;
      let tmp = arr.(1) in
      arr.(1) <- arr.(!max_i);
      arr.(!max_i) <- tmp;
      Vec.push s.learnts c;
      watch s (neg arr.(0)) c;
      watch s (neg arr.(1)) c;
      cla_bump s c;
      enqueue s l (Some c)
  | [] -> s.ok <- false

(* ---- decisions ----------------------------------------------------- *)

let rec pick_branch_var s : int option =
  if s.heap_size = 0 then None
  else
    let v = heap_pop s in
    if s.assign.(v) < 0 then Some v else pick_branch_var s

(* The i-th element (1-based) of the Luby restart sequence. *)
let rec luby_seq i =
  let k = ref 1 in
  while (1 lsl !k) - 1 < i do incr k done;
  if (1 lsl !k) - 1 = i then 1 lsl (!k - 1)
  else luby_seq (i - (1 lsl (!k - 1)) + 1)

(* ---- main loop ----------------------------------------------------- *)

let solve ?(conflict_budget = 200_000) (s : t) : result =
  if not s.ok then Unsat
  else begin
    let budget_exhausted = ref false in
    let answer = ref None in
    let restart_count = ref 0 in
    (match propagate s with
     | Some _ -> answer := Some Unsat
     | None -> ());
    while !answer = None && not !budget_exhausted do
      incr restart_count;
      let restart_limit = 100 * luby_seq !restart_count in
      let local_conflicts = ref 0 in
      let done_ = ref false in
      while not !done_ do
        match propagate s with
        | Some confl ->
            s.conflicts <- s.conflicts + 1;
            incr local_conflicts;
            if decision_level s = 0 then begin
              answer := Some Unsat;
              done_ := true
            end
            else begin
              let learnt, btlevel = analyze s confl in
              cancel_until s btlevel;
              record_learnt s learnt;
              var_decay s;
              if s.conflicts >= conflict_budget then begin
                budget_exhausted := true;
                done_ := true
              end
              else if !local_conflicts >= restart_limit then begin
                cancel_until s 0;
                done_ := true
              end
            end
        | None -> (
            match pick_branch_var s with
            | None ->
                answer := Some Sat;
                done_ := true
            | Some v ->
                Vec.push s.trail_lim (Vec.size s.trail);
                enqueue s (lit_of_var v ~positive:s.polarity.(v)) None)
      done
    done;
    match !answer with
    | Some Sat -> Sat
    | Some r ->
        cancel_until s 0;
        r
    | None ->
        cancel_until s 0;
        Unknown
  end

(** Value of a variable in the satisfying assignment (call after
    [solve] = Sat; unassigned variables default to false). *)
let model_value s v = v < s.nvars && s.assign.(v) = 1

let num_vars s = s.nvars
let num_clauses s = Vec.size s.clauses
let num_conflicts s = s.conflicts
