(** Binary-classification metrics used by every evaluation table. *)

type confusion = {
  mutable tp : int;
  mutable fp : int;
  mutable tn : int;
  mutable fn : int;
}

val empty : unit -> confusion

val record : confusion -> truth:bool -> predicted:bool -> unit
(** Tally one sample. *)

val merge : confusion -> confusion -> confusion
val total : confusion -> int
val precision : confusion -> float
val recall : confusion -> float
val f1 : confusion -> float
val pct : float -> float

val pct_string : float -> string
(** "100%" / "98.4%" style rendering used in the paper's tables. *)

val row_string : confusion -> string
(** "P=... R=... F1=..." summary. *)

val rate_string : hits:int -> total:int -> string
(** "hits/total (rate%)" — cache hit-rate style rendering; degrades to
    "hits/total" when [total] is zero. *)

(** Fixed-bucket latency histogram (geometric bounds, 100 µs .. ~100 s)
    for campaign latency reporting.  Bounds are identical across
    instances, so per-worker histograms merge exactly. *)
module Histogram : sig
  type t

  val create : unit -> t

  val add : t -> float -> unit
  (** Record one sample in seconds; negative/NaN samples clamp to 0. *)

  val merge : t -> t -> t
  (** Exact merge of two histograms into a fresh one. *)

  val percentile : t -> float -> float
  (** [percentile t p] for [p] in [0,100]: an upper bound on the [p]-th
      percentile sample (the matching bucket's bound, capped at the
      observed maximum).  0 when empty. *)

  val count : t -> int
  val mean : t -> float

  val sum : t -> float
  (** Total of all recorded samples, in seconds (post-clamp). *)

  val buckets : t -> (float * int) list
  (** Per-bucket (upper bound in seconds, count) pairs in bound order,
      the overflow bucket last with bound [infinity] — the shape a
      Prometheus [le]-labelled exposition cumulates. *)

  val to_string : t -> string
  (** "latency: n=... mean=... p50<=... p90<=... p99<=... max=..." *)

  val to_wire : t -> string
  (** "n:..,mean:..,p50:..,p90:..,p99:..,max:.." — one token with no
      spaces or tabs, embeddable in tab-separated wire grammars.  Times
      are seconds with six decimals. *)
end
