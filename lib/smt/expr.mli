(** Bitvector expressions (widths 1–64), the constraint language of the
    symbolic executor.  Stands in for Z3's BitVec terms; booleans are
    width-1 vectors.

    Expressions are {b hash-consed}: the smart constructors intern every
    node in a per-domain table, so structurally equal expressions built
    within one domain are physically equal, equality is O(1) in the
    common case, and traversals (substitution, variable scans) memoize
    per node via the unique [tag].  Each node carries its precomputed
    structural hash and width.  Construction also runs a canonical
    normalization pass: constant folding, constant-on-left plus
    deterministic operand ordering for commutative ops, reassociation of
    constant chains, double-negation / extract-of-extract / zext-of-zext
    collapse.  The ordering comparator is blind to variable ids and node
    tags (it uses names and widths), so the normal form of a constraint
    does not depend on allocation order — a requirement of the engine's
    determinism contract. *)

type width = int

type var = {
  vid : int;  (** unique id *)
  vname : string;  (** debug name *)
  vwidth : width;
}

type unop =
  | Not  (** bitwise complement *)
  | Neg  (** two's complement negation *)
  | Popcnt
  | Clz
  | Ctz

type binop =
  | Add | Sub | Mul
  | Udiv | Urem | Sdiv | Srem
  | And | Or | Xor
  | Shl | Lshr | Ashr
  | Rotl | Rotr

type cmp = Eq | Ult | Slt | Ule | Sle

(** A hash-consed expression.  [node] is the structure; [tag] is a
    process-unique id assigned at interning time (valid for identity and
    memoization, {b not} deterministic across runs); [hkey] is the
    precomputed structural hash; [ewidth] the bit width; [evars] whether
    any variable occurs in the DAG.  Build values only through the smart
    constructors below — the record is private. *)
type t = private {
  node : node;
  tag : int;
  hkey : int;
  ewidth : width;
  evars : bool;
}

and node =
  | Const of width * int64  (** value masked to width *)
  | Var of var
  | Unop of unop * t
  | Binop of binop * t * t
  | Cmp of cmp * t * t  (** width-1 result *)
  | Ite of t * t * t  (** condition has width 1 *)
  | Extract of int * int * t  (** [Extract (hi, lo, e)], bits lo..hi inclusive *)
  | Concat of t * t  (** [Concat (hi, lo)]: hi bits above lo bits *)
  | Zext of width * t
  | Sext of width * t

(** {1 Widths and values} *)

val mask : width -> int64 -> int64
(** Keep the low [width] bits. *)

val width_of : t -> width
(** O(1): reads the precomputed [ewidth]. *)

val to_signed : width -> int64 -> int64
(** Interpret a masked value as signed. *)

(** {1 Identity} *)

val tag : t -> int
(** The unique interning tag (process-unique; scheduling-dependent). *)

val hash : t -> int
(** The precomputed structural hash ([hkey]); equal for structurally
    equal expressions even when they are not physically shared. *)

val equal : t -> t -> bool
(** Structural equality (variables by id).  Physically shared nodes —
    the common case within one domain — short-circuit in O(1). *)

(** {1 Variables} *)

val fresh_var : ?name:string -> width -> var
val var : var -> t

(** {1 Concrete semantics} *)

val eval_unop : width -> unop -> int64 -> int64
val eval_binop : width -> binop -> int64 -> int64 -> int64
val eval_cmp : width -> cmp -> int64 -> int64 -> bool

(** {1 Smart constructors (interning + normalization)} *)

val const : width -> int64 -> t
val bool_ : bool -> t
val true_ : t
val false_ : t
val is_true : t -> bool
val is_false : t -> bool
val unop : unop -> t -> t
val binop : binop -> t -> t -> t
val cmp : cmp -> t -> t -> t
val ite : t -> t -> t -> t
val extract : int -> int -> t -> t
val concat : t -> t -> t
val zext : width -> t -> t
val sext : width -> t -> t

val not_ : t -> t
(** Boolean negation of a width-1 vector. *)

val and_ : t -> t -> t
val or_ : t -> t -> t
val conj : t list -> t
val eq : t -> t -> t
val ne : t -> t -> t

(** {1 Traversal and evaluation}

    All traversals are DAG-aware: shared subterms are visited once,
    keyed on [tag]. *)

val iter_vars : (var -> unit) -> t -> unit
(** Calls [f] once per distinct variable {e node} (not once per textual
    occurrence — shared subterms are visited once). *)

val vars : t -> var list
val contains_var : (var -> bool) -> t -> bool

val contains_var_memo : (int, bool) Hashtbl.t -> (var -> bool) -> t -> bool
(** Like [contains_var], but memoized across calls through the supplied
    table (keyed by node [tag]).  The table must only ever be used with
    one predicate. *)

val has_any_var : t -> bool
(** O(1): reads the precomputed [evars]. *)

val subst : (var -> t option) -> t -> t
(** Substitute variables; [None] keeps the variable.  Rebuilds through
    the smart constructors, so substitution also simplifies; memoized
    per shared node within the call. *)

val eval : (int, int64) Hashtbl.t -> t -> int64
(** Evaluate under a full assignment (variable id -> value); raises
    [Not_found] on unassigned variables.  Memoized per shared node;
    [Ite] only evaluates the taken branch. *)

(** {1 Hash-consing table management} *)

val hashcons_stats : unit -> int * int
(** [(live, total)]: nodes currently interned in this domain's table,
    and nodes ever interned process-wide. *)

val hashcons_compact : ?threshold:int -> unit -> unit
(** Drop this domain's intern table if it holds more than [threshold]
    nodes (default [2^17]).  Existing expressions stay valid; later
    constructions simply stop sharing with pre-compaction nodes.  Only
    call at a session boundary — mid-session compaction would degrade
    sharing (never correctness: equality falls back to a structural
    walk). *)

(** {1 Printing} *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
