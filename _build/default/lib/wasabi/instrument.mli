(** Contract-level bytecode instrumentation (§3.3.1, built on the Wasabi
    idea): every instruction is prefixed with a site announcement and
    operand duplication through scratch locals; calls get the five
    lifecycle hooks of the paper's Table 1.  The instrumented module is
    valid Wasm that round-trips through the binary format. *)

val hook_count : int
(** Number of hook imports added (the function index space shifts by this
    much). *)

val instrument : Wasai_wasm.Ast.module_ -> Wasai_wasm.Ast.module_ * Trace.meta
(** Rewrite a module; returns it plus the static site metadata. *)

val instrument_binary : string -> string * Trace.meta
(** Decode a binary, rewrite, re-encode — the pipeline entry the fuzzer
    uses. *)

val runtime_extension :
  Trace.t -> target:Wasai_eosio.Name.t -> Wasai_eosio.Chain.extension
(** Chain extension binding the [wasai] hook imports to a collector,
    restricted to one contract account (the fuzzing target). *)
