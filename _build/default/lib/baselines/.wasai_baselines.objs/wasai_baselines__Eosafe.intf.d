lib/baselines/eosafe.mli: Wasai_core Wasai_wasm
