(** The vulnerability scanner: the harness driving the registered
    {!Oracle} instances (§3.5) over every executed payload.

    The scanner consumes the trace of every executed payload together
    with the delivery channel the Engine used (the adversary oracles of
    §2.3), identifies the eosponser action function from genuine
    transfers, and accumulates sticky per-detector fires plus
    first-fire exploit evidence across the whole fuzzing session.  The
    detectors themselves live in {!Oracle}; this module re-exports the
    channel/flag vocabulary so existing callers keep compiling. *)

module Wasm = Wasai_wasm
module Trace = Wasai_wasabi.Trace
open Wasai_eosio

(** How the payload reached the contract. *)
type channel = Oracle.channel =
  | Ch_genuine  (** real EOS via eosio.token *)
  | Ch_direct  (** eosponser invoked directly with a forged action *)
  | Ch_fake_token  (** EOS issued by an attacker token contract *)
  | Ch_fake_notif  (** notification forwarded by an agent contract *)
  | Ch_action of Name.t  (** ordinary action push *)

let string_of_channel = Oracle.string_of_channel
let channel_of_string = Oracle.channel_of_string

type flag = Oracle.flag =
  | Fake_eos
  | Fake_notif
  | Miss_auth
  | Blockinfo_dep
  | Rollback
  | State_io
  | Fake_transfer
  | Asset_overflow

let legacy_flags = Oracle.legacy_flags
let extension_flags = Oracle.extension_flags
let all_flags = Oracle.all_flags
let string_of_flag = Oracle.string_of_flag
let flag_of_string = Oracle.flag_of_string

(** A user-supplied detector (the §5 extension interface): it analyses
    each executed payload's trace and returns [true] when the exploit
    event it looks for occurred.  Once fired, it stays fired. *)
type custom_oracle = {
  co_name : string;
  co_detect : channel -> Trace.Buffer.t -> bool;
}

type t = {
  meta : Trace.meta;
  victim : Name.t;
  fake_notif_agent : Name.t;
  action_candidates : int list;  (** possible eosponser ids (instrumented) *)
  mutable eosponser_id : int option;  (** id_e, learned from a genuine trace *)
  oracles : (Oracle.instance * bool ref) list;
      (** registered detectors with their sticky fire bits *)
  mutable custom : (custom_oracle * bool ref) list;
  mutable evidence : (flag * evidence) list;
      (** first exploit payload observed per fired flag *)
}

(** The exploit payload behind a verdict: what to submit, and how. *)
and evidence = {
  ev_channel : channel;
  ev_payload : Wasai_eosio.Action.t;
}

let create ?(profile : Chain_profile.t option)
    ?(fake_token_account = Name.of_string "fake.token") ~(meta : Trace.meta)
    ~(victim : Name.t) ~(fake_notif_agent : Name.t) () : t =
  let instances =
    Oracle.instantiate ?profile ~meta ~victim ~fake_notif_agent
      ~fake_token:fake_token_account ()
  in
  {
    meta;
    victim;
    fake_notif_agent;
    action_candidates =
      Wasai_symbolic.Convention.find_action_functions meta.Trace.instrumented;
    eosponser_id = None;
    oracles = List.map (fun oi -> (oi, ref false)) instances;
    custom = [];
    evidence = [];
  }

let register_custom (t : t) (oracle : custom_oracle) =
  t.custom <- t.custom @ [ (oracle, ref false) ]

module B = Trace.Buffer

(* Function ids that began execution, in order (the id⃗ chain of §3.5). *)
let executed_ids (buf : B.t) : int list =
  let rec go i acc =
    if i < 0 then acc
    else
      go (i - 1)
        (if B.kind buf i = B.K_func_begin then B.label buf i :: acc else acc)
  in
  go (B.length buf - 1) []

(** Feed one executed payload's trace into the scanner.  [payload] is the
    action that was pushed: when a detector first fires, it is kept as
    the exploit evidence.  [executed] lets a caller that already streamed
    the buffer (the engine's fused scan) pass the function-begin chain in
    instead of re-walking the trace. *)
let observe ?(payload : Wasai_eosio.Action.t option) ?(executed : int list option)
    (t : t) ~(channel : channel) (buf : B.t) =
  let record_evidence flag =
    match payload with
    | Some act when not (List.mem_assoc flag t.evidence) ->
        t.evidence <-
          t.evidence @ [ (flag, { ev_channel = channel; ev_payload = act }) ]
    | _ -> ()
  in
  let ids = match executed with Some ids -> ids | None -> executed_ids buf in
  (* id_e: the action function executing during a *valid* EOS transfer. *)
  (match (channel, t.eosponser_id) with
   | Ch_genuine, None ->
       t.eosponser_id <-
         List.find_opt (fun f -> List.mem f t.action_candidates) ids
   | _ -> ());
  let eosponser_ran =
    match t.eosponser_id with
    | Some e -> List.mem e ids
    | None ->
        (* Until id_e is known, fall back to "any action candidate ran". *)
        List.exists (fun f -> List.mem f t.action_candidates) ids
  in
  let ctx = { Oracle.cx_channel = channel; cx_eosponser_ran = eosponser_ran } in
  (* Every instance steps over every payload (sticky-fired ones too:
     exculpatory state like the FakeNotif guard must keep accumulating);
     the first fire pins the evidence. *)
  List.iter
    (fun ((oi : Oracle.instance), fired) ->
      let cur = Trace.Cursor.make buf in
      if oi.Oracle.oi_step ctx cur then begin
        fired := true;
        record_evidence oi.Oracle.oi_flag
      end)
    t.oracles;
  List.iter
    (fun (oracle, fired) ->
      if (not !fired) && oracle.co_detect channel buf then fired := true)
    t.custom

(** Final verdict for one vulnerability class. *)
let verdict (t : t) (f : flag) : bool =
  match
    List.find_opt (fun ((oi : Oracle.instance), _) -> oi.Oracle.oi_flag = f) t.oracles
  with
  | Some (oi, fired) -> oi.Oracle.oi_verdict ~fired:!fired
  | None -> false

let report (t : t) : (flag * bool) list =
  List.map (fun f -> (f, verdict t f)) all_flags

(** Verdicts of the registered custom oracles. *)
let custom_report (t : t) : (string * bool) list =
  List.map (fun (oracle, fired) -> (oracle.co_name, !fired)) t.custom

(** Exploit payload behind a fired verdict, if one was captured. *)
let evidence_for (t : t) (f : flag) : evidence option =
  List.assoc_opt f t.evidence

let string_of_evidence ?(abi : Abi.t option) (e : evidence) : string =
  let act = e.ev_payload in
  let args =
    match abi with
    | None -> None
    | Some abi -> (
        match Abi.find_action abi act.Action.act_name with
        | None -> None
        | Some def -> (
            match Abi.deserialize def act.Action.act_data with
            | values ->
                Some
                  (String.concat ", " (List.map Abi.string_of_value values))
            | exception Abi.Deserialize_error _ -> None))
  in
  match args with
  | Some args ->
      Printf.sprintf "%s@%s(%s) auth=[%s] via %s channel"
        (Name.to_string act.Action.act_name)
        (Name.to_string act.Action.act_account)
        args
        (String.concat "," (List.map Name.to_string act.Action.act_auth))
        (string_of_channel e.ev_channel)
  | None ->
      Printf.sprintf "%s via %s channel"
        (Wasai_eosio.Action.to_string act)
        (string_of_channel e.ev_channel)

(* ------------------------------------------------------------------ *)
(* Wire format for persisted evidence                                  *)
(* ------------------------------------------------------------------ *)

(* '@'-separated [channel@account@action@auth1+auth2@hexdata]: none of
   the segment alphabets (channel keywords, the EOSIO name alphabet
   [.12345a-z], lowercase hex) contain '@' or '+', so the record needs
   no escaping and survives inside a tab-separated journal field. *)

let hex_of_string (s : string) : string =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let string_of_hex (h : string) : string option =
  let digit c =
    match c with
    | '0' .. '9' -> Some (Char.code c - Char.code '0')
    | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
    | _ -> None
  in
  let n = String.length h in
  if n mod 2 <> 0 then None
  else
    let rec go i acc =
      if i = n then Some (Buffer.contents acc)
      else
        match (digit h.[i], digit h.[i + 1]) with
        | Some hi, Some lo ->
            Buffer.add_char acc (Char.chr ((hi * 16) + lo));
            go (i + 2) acc
        | _ -> None
    in
    go 0 (Buffer.create (n / 2))

let evidence_to_wire (e : evidence) : string =
  let a = e.ev_payload in
  String.concat "@"
    [
      string_of_channel e.ev_channel;
      Name.to_string a.Action.act_account;
      Name.to_string a.Action.act_name;
      String.concat "+" (List.map Name.to_string a.Action.act_auth);
      hex_of_string a.Action.act_data;
    ]

let evidence_of_wire (s : string) : (evidence, string) result =
  let name_of n =
    match Name.of_string n with
    | v -> Ok v
    | exception Invalid_argument _ ->
        Error (Printf.sprintf "evidence %S: bad name %S" s n)
  in
  let ( let* ) = Result.bind in
  match String.split_on_char '@' s with
  | [ ch; account; action; auth; data ] -> (
      match channel_of_string ch with
      | None -> Error (Printf.sprintf "evidence %S: bad channel %S" s ch)
      | Some ev_channel -> (
          let* act_account = name_of account in
          let* act_name = name_of action in
          let* act_auth =
            if auth = "" then Ok []
            else
              List.fold_left
                (fun acc n ->
                  let* acc = acc in
                  let* n = name_of n in
                  Ok (n :: acc))
                (Ok [])
                (String.split_on_char '+' auth)
              |> Result.map List.rev
          in
          match string_of_hex data with
          | None -> Error (Printf.sprintf "evidence %S: bad hex payload" s)
          | Some act_data ->
              Ok
                {
                  ev_channel;
                  ev_payload =
                    { Action.act_account; act_name; act_data; act_auth };
                }))
  | _ -> Error (Printf.sprintf "evidence %S: expected 5 '@'-separated fields" s)

(* ------------------------------------------------------------------ *)
(* Helpers for writing custom oracles                                  *)
(* ------------------------------------------------------------------ *)

(* Index of the first call_pre into the named env API, if any. *)
let find_call (meta : Trace.meta) (name : string) (buf : B.t) : int option =
  match Trace.find_env_import meta name with
  | None -> None
  | Some id ->
      let n = B.length buf in
      let rec go i =
        if i >= n then None
        else if
          B.kind buf i = B.K_call_pre
          &&
          match (Trace.site_of meta (B.label buf i)).Trace.site_instr with
          | Wasm.Ast.Call fi -> fi = id
          | _ -> false
        then Some i
        else go (i + 1)
      in
      go 0

(** [calls_env_import meta name buf]: did the trace call the named
    env API?  The building block most detectors need. *)
let calls_env_import (meta : Trace.meta) (name : string) (buf : B.t) : bool =
  find_call meta name buf <> None

(** Arguments of the first call to the named env API in the trace. *)
let first_call_args (meta : Trace.meta) (name : string) (buf : B.t) :
    Wasm.Values.value list option =
  Option.map (B.ops buf) (find_call meta name buf)
