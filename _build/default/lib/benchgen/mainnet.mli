(** The RQ4 "in the wild" population: a synthetic stand-in for the 991
    profitable Mainnet contracts, with prevalence priors set from the
    paper's reported rates and a later-version history (abandoned /
    patched / still exposed). *)

module Wasm = Wasai_wasm
open Wasai_eosio

type history =
  | Abandoned  (** latest version replaced by an empty file *)
  | Operating_patched
  | Operating_unpatched

type deployed = {
  dep_id : int;
  dep_account : Name.t;
  dep_spec : Contracts.spec;
  dep_module : Wasm.Ast.module_;
  dep_abi : Abi.t;
  dep_history : history;
  dep_deployed_at : string;  (** synthetic deployment date *)
}

val patched_spec : Contracts.spec -> Contracts.spec

val generate : ?seed:int64 -> ?count:int -> unit -> deployed list

val latest_version : deployed -> (Wasm.Ast.module_ * Abi.t) option
(** [None] models the empty file of an abandoned contract. *)

val truth_any : deployed -> bool
