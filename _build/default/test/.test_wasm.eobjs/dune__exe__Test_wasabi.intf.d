test/test_wasabi.mli:
