lib/baselines/eosafe.ml: Array Hashtbl Int64 List Option Wasai_core Wasai_eosio Wasai_wasm
