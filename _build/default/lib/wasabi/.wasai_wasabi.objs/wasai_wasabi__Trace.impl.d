lib/wasabi/trace.ml: Array List Printf String Wasai_wasm
