(** Generator of EOSIO contract binaries for the benchmark: profitable
    lottery/market contracts with an [apply] dispatcher, an eosponser
    responding to EOS transfers, and auxiliary actions (deposit / setup /
    reveal) creating the stateful behaviour the fuzzer must sequence
    transactions for.

    The [spec] switches reproduce each vulnerability class and its patch:
    Fake EOS (the Listing-1 [code == eosio.token] guard), Fake Notif (the
    Listing-2 [to == _self] guard), MissAuth ([require_auth] before side
    effects), BlockinfoDep ([tapos_*] randomness), Rollback
    ([send_inline] vs deferred payout). *)

module Wasm = Wasai_wasm
open Wasai_eosio

type dispatcher_style = Indirect | Direct

type check_target =
  | Chk_from
  | Chk_to
  | Chk_amount
  | Chk_symbol
  | Chk_memo_len
  | Chk_memo_prefix  (** first 8 bytes of the memo content *)

type check = { chk_target : check_target; chk_value : int64 }
(** A parameter check at the eosponser entry: trap ([unreachable]) unless
    the field equals the constant. *)

type guard_style = Guard_assert | Guard_if_return

type spec = {
  sp_account : Name.t;
  sp_eos_guard_style : guard_style;
      (** the Listing-1 patch as an assert, or as a silent early return —
          the latter makes rejected fake transfers *succeed*, which
          success-based oracles misread *)
  sp_fake_eos_guard : bool;
  sp_fake_notif_guard : bool;
  sp_auth_check : bool;
  sp_blockinfo : bool;
  sp_payout_inline : bool;
      (** true: send_inline (Rollback-unsafe); false: deferred *)
  sp_has_payout : bool;
  sp_db_gate : bool;  (** eosponser requires a players-table row *)
  sp_multi_table : bool;
      (** gate additionally needs a meta row keyed by a setup parameter *)
  sp_deposit_auth : bool option;
      (** override for deposit/reveal auth; [None] follows [sp_auth_check] *)
  sp_admin_reveal : bool;
      (** rollback template behind an admin-only action *)
  sp_min_bet : int64 option;
  sp_memo_gate : string option;
      (** memo must equal this string to reach the payout *)
  sp_checks : check list;  (** complicated-verification injections *)
  sp_dead_template : bool;
      (** template behind an unsatisfiable branch (ground-truth negative) *)
  sp_dispatcher : dispatcher_style;
  sp_log_notifications : bool;
      (** console-log every action (the honeypot-ish pattern) *)
  sp_milestones : milestone list;
      (** nested if/else game logic; each level opens only once the
          previous equality is satisfied (coverage depth) *)
  sp_claim_loop : bool;
      (** add a [claim] action folding the players table with db_next in a
          Wasm loop (iteration-heavy traces) *)
  sp_double_payout : bool;  (** pay 2x the stake *)
  sp_fair_coin : bool;
      (** leave the block-info coin genuinely 50/50 (benchmarks pin it) *)
  sp_state_write : bool;
      (** the eosponser itself upserts players[from] = amount (the WACANA
          state-I/O pattern) *)
  sp_confused_dispatcher : bool;
      (** weaken the Listing-1 guard to [code == eosio.token || code ==
          _self] (the EVulHunter fake-transfer confusion) *)
  sp_payout_multiplier : int64 option;
      (** multiply the payout with a raw [i64.mul] bonus factor (the
          asset-overflow pattern when uncapped) *)
  sp_max_bet : int64 option;
      (** cap the stake before the payout arithmetic (the overflow patch) *)
}

and milestone = {
  ml_field : milestone_field;
  ml_byte : int;  (** 0..7 *)
  ml_value : int;  (** 0..255 *)
}

and milestone_field = Ml_amount | Ml_from | Ml_to | Ml_memo

val default_spec : Name.t -> spec
(** Fully patched contract. *)

val check_code : check -> Wasm.Ast.instr list
(** The injected instruction sequence of one check (shared with the
    bytecode-level injector). *)

val action_sig : Wasm.Types.func_type
(** The shared action-function signature [(self, a, b, c_ptr, d_ptr)]. *)

val tbl_players : Name.t
val tbl_meta : Name.t
val act_deposit : Name.t
val act_reveal : Name.t
val act_setup : Name.t
val act_claim : Name.t
val admin_account : Name.t

val build : spec -> Wasm.Ast.module_ * Abi.t
(** Build (and validate) the contract and its ABI. *)

(** {1 Ground truth} *)

type vuln =
  | Fake_eos
  | Fake_notif
  | Miss_auth
  | Blockinfo_dep
  | Rollback
  | State_io
  | Fake_transfer
  | Asset_overflow

val string_of_vuln : vuln -> string
val all_vulns : vuln list

val template_reachable : spec -> bool

val ground_truth : spec -> vuln -> bool
(** The vulnerability label a spec implies for each class. *)
