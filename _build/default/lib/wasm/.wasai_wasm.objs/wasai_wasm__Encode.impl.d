lib/wasm/encode.ml: Array Ast Buffer Char Fun Int32 Int64 List String Types Values
