test/test_wasm.ml: Alcotest Array Ast Buffer Builder Char Decode Encode Float Int32 Int64 Interp List Memory Printf QCheck QCheck_alcotest String Text Types Validate Values Wasai_wasm Wat
