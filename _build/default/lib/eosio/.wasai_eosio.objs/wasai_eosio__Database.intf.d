lib/eosio/database.mli: Hashtbl Map Name
