lib/eosio/asset.mli: Format
