(** The EOSVM "library API": host functions exposed to Wasm contracts
    under the [env] import namespace (§2.2 of the paper) — action data
    access, permission APIs, notifications, assertion, inline/deferred
    actions, blockchain-state APIs and the [db_*_i64] intrinsics. *)

val env_functions : Chain.context -> Wasai_wasm.Interp.host_func list
(** All env host functions bound to one execution context. *)

val extension : Chain.extension
(** Extension resolving the [env] namespace. *)

val install : Chain.t -> unit

val create_chain : ?fuel_per_action:int -> unit -> Chain.t
(** A chain with the env host API pre-installed — the common entry
    point. *)
