(** Parser for the WAT text subset {!Wat} prints: folded control flow,
    flat plain instructions, [$name] or numeric function references,
    numeric locals/globals/labels.  [Text.parse (Wat.to_string m)] yields
    a behaviourally equivalent module. *)

exception Parse_error of string

val parse : string -> Ast.module_
(** Parse and validate a textual module. *)
