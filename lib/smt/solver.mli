(** Constraint-solving entry point: decides a conjunction of width-1
    constraints and produces a model.

    Two tiers: a propagation quick-path for the
    "invertible term == constant" chains that verification-style contracts
    produce, and full bit-blasting + CDCL for everything else under a
    deterministic conflict budget. *)

type model = (int, int64) Hashtbl.t
(** Expression variable id -> value. *)

type result =
  | Sat of model
  | Unsat
  | Unknown  (** budget exhausted *)

type stats = {
  quick_solved : int Atomic.t;
  blasted : int Atomic.t;
  unknowns : int Atomic.t;
}

val stats : stats
(** Global counters (for benchmarks and reports); atomic so concurrent
    fuzzing domains tally without losing increments. *)

val check : ?conflict_budget:int -> Expr.t list -> result
(** Decide the conjunction of constraints. *)

val validate_model : Expr.t list -> model -> bool
(** Re-evaluate the constraints under a model (defence in depth: the
    engine refuses to trust unverified seeds). *)
