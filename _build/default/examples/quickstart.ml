(* Quickstart: generate a vulnerable EOSIO contract, fuzz it with WASAI,
   and read the report.

     dune exec examples/quickstart.exe

   The walkthrough touches the whole public API surface: the benchmark
   generator builds a real Wasm binary, the engine instruments it, boots a
   local chain with the adversary oracles, and runs the concolic loop. *)

module BG = Wasai_benchgen
module Core = Wasai_core
open Wasai_eosio

let () =
  print_endline "== WASAI quickstart ==\n";

  (* 1. A contract.  [default_spec] is fully patched; we remove the fake-
     notification guard (Listing 2 of the paper) and gate the payout
     behind an exact-amount verification so random fuzzing cannot reach
     it. *)
  let spec =
    {
      (BG.Contracts.default_spec (Name.of_string "eosbet")) with
      BG.Contracts.sp_fake_notif_guard = false;
      sp_payout_inline = true;
      sp_checks =
        [
          {
            BG.Contracts.chk_target = BG.Contracts.Chk_amount;
            chk_value = 1_000_000L (* exactly 100.0000 EOS *);
          };
        ];
    }
  in
  let contract, abi = BG.Contracts.build spec in
  Printf.printf "built contract: %d functions, %d bytes of Wasm\n"
    (Array.length contract.Wasai_wasm.Ast.funcs)
    (String.length (Wasai_wasm.Encode.encode contract));

  (* 2. Fuzz it.  The engine instruments the bytecode, deploys it on a
     local chain next to eosio.token, a fake token and a notification
     agent, and iterates seed selection / execution / symbolic replay. *)
  let target =
    {
      Core.Engine.tgt_account = Name.of_string "eosbet";
      tgt_module = contract;
      tgt_abi = abi;
    }
  in
  let outcome = Core.Engine.fuzz target in

  (* 3. The report. *)
  Printf.printf "\nfuzzed %d transactions, %d distinct branches, %d adaptive seeds\n"
    outcome.Core.Engine.out_transactions outcome.Core.Engine.out_branches
    outcome.Core.Engine.out_adaptive_seeds;
  print_endline "verdicts:";
  List.iter
    (fun (flag, vulnerable) ->
      Printf.printf "  %-14s %s\n"
        (Core.Scanner.string_of_flag flag)
        (if vulnerable then "VULNERABLE" else "ok"))
    outcome.Core.Engine.out_flags;

  (* The amount gate (quantity == 100.0000 EOS) was solved by the SMT
     feedback: a random fuzzer cannot find the payout behind it. *)
  assert (Core.Engine.flagged outcome Core.Scanner.Fake_notif);
  assert (Core.Engine.flagged outcome Core.Scanner.Rollback);
  print_endline "\nthe solver got through the 100.0000 EOS verification gate;";
  print_endline "both planted vulnerabilities were found."
