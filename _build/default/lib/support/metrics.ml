(** Binary-classification metrics used by every evaluation table. *)

type confusion = {
  mutable tp : int;
  mutable fp : int;
  mutable tn : int;
  mutable fn : int;
}

let empty () = { tp = 0; fp = 0; tn = 0; fn = 0 }

let record c ~truth ~predicted =
  match (truth, predicted) with
  | true, true -> c.tp <- c.tp + 1
  | false, true -> c.fp <- c.fp + 1
  | false, false -> c.tn <- c.tn + 1
  | true, false -> c.fn <- c.fn + 1

let merge a b =
  { tp = a.tp + b.tp; fp = a.fp + b.fp; tn = a.tn + b.tn; fn = a.fn + b.fn }

let total c = c.tp + c.fp + c.tn + c.fn

let precision c =
  if c.tp + c.fp = 0 then 0.0 else float_of_int c.tp /. float_of_int (c.tp + c.fp)

let recall c =
  if c.tp + c.fn = 0 then 0.0 else float_of_int c.tp /. float_of_int (c.tp + c.fn)

let f1 c =
  let p = precision c and r = recall c in
  if p +. r = 0.0 then 0.0 else 2.0 *. p *. r /. (p +. r)

let pct x = 100.0 *. x

(** "100%" / "98.4%" style rendering used in the paper's tables. *)
let pct_string x =
  let v = pct x in
  if Float.abs (v -. Float.round v) < 0.05 then Printf.sprintf "%.0f%%" v
  else Printf.sprintf "%.1f%%" v

let row_string c =
  Printf.sprintf "P=%s R=%s F1=%s" (pct_string (precision c))
    (pct_string (recall c)) (pct_string (f1 c))
