examples/stateful_gate.ml: Name Printf Wasai_benchgen Wasai_core Wasai_eosio
