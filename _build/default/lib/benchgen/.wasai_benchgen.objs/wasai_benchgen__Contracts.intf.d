lib/benchgen/contracts.mli: Abi Name Wasai_eosio Wasai_wasm
