(** Benchmark corpora mirroring the paper's §4.2–§4.4 datasets.

    - {!ground_truth}: the 3,340-sample balanced benchmark of Table 4
      (254 FakeEOS + 1,378 FakeNotif + 890 MissAuth + 400 BlockinfoDep +
      418 Rollback, half vulnerable per class);
    - {!obfuscated}: the same samples after the RQ3 obfuscator;
    - {!verification}: the 2,924-sample complicated-verification corpus
      of Table 6;
    - {!coverage_set}: the 100 branch-rich contracts of RQ1 (Figure 3).

    Every sample is generated deterministically from the corpus seed.
    [scale] divides the per-class counts to produce a smaller corpus with
    the same composition (the full corpus is minutes of CPU; scaled runs
    preserve the shape). *)

module Wasm = Wasai_wasm
open Wasai_eosio

type sample = {
  smp_id : int;
  smp_class : Contracts.vuln;  (** the benchmark row this sample belongs to *)
  smp_truth : bool;  (** vulnerable with respect to its class *)
  smp_spec : Contracts.spec;
  smp_module : Wasm.Ast.module_;
  smp_abi : Abi.t;
}

(* Paper counts per class (vulnerable = half). *)
let paper_counts =
  [
    (Contracts.Fake_eos, 254);
    (Contracts.Fake_notif, 1378);
    (Contracts.Miss_auth, 890);
    (Contracts.Blockinfo_dep, 400);
    (Contracts.Rollback, 418);
  ]

(* Per-class counts of the related-work extension corpus (StateIo /
   FakeTransfer / AssetOverflow).  Kept out of [paper_counts] so the
   legacy corpora consume exactly the RNG stream they always did and
   their binaries and verdicts stay byte-identical. *)
let extension_counts =
  [
    (Contracts.State_io, 60);
    (Contracts.Fake_transfer, 60);
    (Contracts.Asset_overflow, 60);
  ]

let verification_counts =
  [
    (Contracts.Fake_eos, 190);
    (Contracts.Fake_notif, 1178);
    (Contracts.Miss_auth, 756);
    (Contracts.Blockinfo_dep, 400);
    (Contracts.Rollback, 400);
  ]

(* Random background flags shared by all classes: the EOSAFE dispatcher
   heuristic only understands the indirect pattern, so the direct-style
   fraction drives its timeout rate, as §4.2 describes. *)
let background rng account : Contracts.spec =
  let base = Contracts.default_spec account in
  {
    base with
    Contracts.sp_dispatcher =
      (if Wasai_support.Rand.flip rng ~p:0.45 then Contracts.Indirect
       else Contracts.Direct);
    sp_eos_guard_style =
      (if Wasai_support.Rand.flip rng ~p:0.5 then Contracts.Guard_assert
       else Contracts.Guard_if_return);
    sp_db_gate = Wasai_support.Rand.flip rng ~p:0.25;
    sp_min_bet =
      (if Wasai_support.Rand.flip rng ~p:0.4 then
         Some (Int64.of_int (1 + Wasai_support.Rand.int rng 1000))
       else None);
    sp_memo_gate =
      (if Wasai_support.Rand.flip rng ~p:0.12 then Some "action:buy" else None);
    sp_checks =
      (if Wasai_support.Rand.flip rng ~p:0.2 then
         Verification.random_checks rng ~depth:(1 + Wasai_support.Rand.int rng 2)
       else []);
    sp_log_notifications = Wasai_support.Rand.flip rng ~p:0.1;
    sp_payout_inline = false;
    sp_has_payout = true;
  }

(* Specialise a background spec for one benchmark class and truth label. *)
let specialise rng (cls : Contracts.vuln) ~(vulnerable : bool)
    (spec : Contracts.spec) : Contracts.spec =
  match cls with
  | Contracts.Fake_eos -> { spec with Contracts.sp_fake_eos_guard = not vulnerable }
  | Contracts.Fake_notif ->
      { spec with Contracts.sp_fake_notif_guard = not vulnerable }
  | Contracts.Miss_auth ->
      if vulnerable && Wasai_support.Rand.flip rng ~p:0.08 then
        (* The paper's DBG-granularity FN shape: the only unauthenticated
           effect hides behind a meta-table gate whose row id comes from a
           different action's parameter. *)
        {
          spec with
          Contracts.sp_auth_check = false;
          sp_deposit_auth = Some true;
          sp_db_gate = true;
          sp_multi_table = true;
        }
      else { spec with Contracts.sp_auth_check = not vulnerable }
  | Contracts.Blockinfo_dep ->
      (* The generated nested-branch template contracts of §4.2: random-
         constant verification in front, the Listing-4 template at the
         leaves; inaccessible branches make the negatives.  Listing 4's
         dispatcher has neither guard, so exploit payloads can reach the
         checks with attacker-chosen parameters. *)
      {
        spec with
        Contracts.sp_blockinfo = true;
        sp_payout_inline = true;
        sp_fake_eos_guard = false;
        sp_fake_notif_guard = false;
        sp_checks =
          Verification.random_checks rng ~depth:(1 + Wasai_support.Rand.int rng 3);
        sp_dead_template = not vulnerable;
        sp_db_gate = false;
        sp_memo_gate = None;
      }
  | Contracts.Rollback ->
      if vulnerable then
        let admin_fn = Wasai_support.Rand.flip rng ~p:0.05 in
        {
          spec with
          Contracts.sp_payout_inline = true;
          sp_fake_eos_guard = false;
          sp_fake_notif_guard = false;
          sp_checks =
            Verification.random_checks rng
              ~depth:(1 + Wasai_support.Rand.int rng 3);
          sp_admin_reveal = admin_fn;
          sp_has_payout = not admin_fn;
          sp_db_gate = false;
          sp_memo_gate = None;
        }
      else
        (* Safe samples come from inaccessible branches (the paper's own
           negative-generation method) or, rarely, the defer scheme. *)
        let dead = Wasai_support.Rand.flip rng ~p:0.9 in
        {
          spec with
          Contracts.sp_payout_inline = dead;
          sp_dead_template = dead;
          sp_fake_eos_guard = false;
          sp_fake_notif_guard = false;
          sp_checks =
            Verification.random_checks rng
              ~depth:(1 + Wasai_support.Rand.int rng 3);
          sp_db_gate = false;
          sp_memo_gate = None;
        }
  | Contracts.State_io ->
      (* The eosponser records the stake itself; the vulnerable variant
         drops the Listing-2 guard so a forwarded notification reaches
         the write, the patched one keeps both guards intact. *)
      {
        spec with
        Contracts.sp_state_write = true;
        sp_fake_eos_guard = true;
        sp_fake_notif_guard = not vulnerable;
        sp_confused_dispatcher = false;
        (* Any verification in front of the write must stay satisfiable
           on the forged channels: payer/payee equality tests compare
           names the notification mechanism fixes, which would make the
           planted write unreachable and the label unsound. *)
        sp_checks =
          (match spec.Contracts.sp_checks with
           | [] -> []
           | cs ->
               Verification.random_checks
                 ~targets:Verification.payload_targets rng
                 ~depth:(List.length cs));
        sp_db_gate = false;
        sp_memo_gate = None;
      }
  | Contracts.Fake_transfer ->
      (* Both variants carry the eosio.token comparison; only the
         vulnerable one accepts the [code == _self] escape. *)
      {
        spec with
        Contracts.sp_fake_eos_guard = true;
        sp_confused_dispatcher = vulnerable;
        sp_db_gate = false;
        sp_memo_gate = None;
      }
  | Contracts.Asset_overflow ->
      (* A raw i64.mul bonus on the stake; the patch caps the bet below
         the overflow threshold (and floors it, so the product cannot
         underflow either). *)
      {
        spec with
        Contracts.sp_payout_multiplier = Some (Int64.shift_left 1L 45);
        sp_max_bet = (if vulnerable then None else Some 100_000L);
        (* No amount-equality verification: pinning the stake to a
           random constant below the overflow threshold would falsify
           the vulnerable label. *)
        sp_checks =
          (match spec.Contracts.sp_checks with
           | [] -> []
           | cs ->
               Verification.random_checks
                 ~targets:Contracts.[| Chk_symbol; Chk_memo_len |]
                 rng ~depth:(List.length cs));
        sp_min_bet =
          (if vulnerable then spec.Contracts.sp_min_bet
           else
             match spec.Contracts.sp_min_bet with
             | Some v -> Some v
             | None -> Some 1L);
        sp_blockinfo = false;
        sp_dead_template = false;
        sp_has_payout = true;
        sp_db_gate = false;
        sp_memo_gate = None;
      }

let scaled n scale = max 2 (n / scale)

let build_sample id cls truth spec : sample =
  let m, abi = Contracts.build spec in
  {
    smp_id = id;
    smp_class = cls;
    smp_truth = truth;
    smp_spec = spec;
    smp_module = m;
    smp_abi = abi;
  }

(** The Table-4 ground-truth benchmark. *)
let ground_truth ?(seed = 42L) ?(scale = 1) () : sample list =
  let rng = Wasai_support.Rand.create seed in
  let id = ref 0 in
  List.concat_map
    (fun (cls, count) ->
      let n = scaled count scale in
      List.init n (fun k ->
          incr id;
          let vulnerable = k mod 2 = 0 in
          let account =
            Name.of_string (Wasai_support.Rand.eosio_name_string rng 10)
          in
          let spec = specialise rng cls ~vulnerable (background rng account) in
          (* Consistency: the spec must imply the intended label. *)
          assert (Contracts.ground_truth spec cls = vulnerable);
          build_sample !id cls vulnerable spec))
    paper_counts

(** The related-work extension benchmark: StateIo / FakeTransfer /
    AssetOverflow samples, half vulnerable per class.  A separate corpus
    (own seed, own RNG stream) so {!ground_truth} keeps producing
    bit-identical legacy binaries. *)
let extension ?(seed = 45L) ?(scale = 1) () : sample list =
  let rng = Wasai_support.Rand.create seed in
  let id = ref 0 in
  List.concat_map
    (fun (cls, count) ->
      let n = scaled count scale in
      List.init n (fun k ->
          incr id;
          let vulnerable = k mod 2 = 0 in
          let account =
            Name.of_string (Wasai_support.Rand.eosio_name_string rng 10)
          in
          let spec = specialise rng cls ~vulnerable (background rng account) in
          assert (Contracts.ground_truth spec cls = vulnerable);
          build_sample !id cls vulnerable spec))
    extension_counts

(** The Table-5 corpus: the ground-truth samples, obfuscated. *)
let obfuscated ?(seed = 42L) ?(scale = 1) () : sample list =
  List.map
    (fun s -> { s with smp_module = Obfuscate.obfuscate s.smp_module })
    (ground_truth ~seed ~scale ())

(** The Table-6 corpus: complicated verification injected at the
    eosponser entry. *)
let verification ?(seed = 43L) ?(scale = 1) () : sample list =
  let rng = Wasai_support.Rand.create seed in
  let id = ref 0 in
  List.concat_map
    (fun (cls, count) ->
      let n = scaled count scale in
      List.init n (fun k ->
          incr id;
          let vulnerable = k mod 2 = 0 in
          let account =
            Name.of_string (Wasai_support.Rand.eosio_name_string rng 10)
          in
          let spec = specialise rng cls ~vulnerable (background rng account) in
          (* Keep the contract's own checks off the payload fields the
             injection below will constrain, so the conjunction stays
             satisfiable and ground truth is preserved. *)
          let spec =
            {
              spec with
              Contracts.sp_checks =
                (if spec.Contracts.sp_checks = [] then []
                 else
                   Verification.random_checks rng
                     ~targets:Contracts.[| Chk_from; Chk_to |]
                     ~depth:(List.length spec.Contracts.sp_checks));
              (* The injected equality pins the amount; a minimum-bet
                 assert or memo gate on the same fields would make the
                 conjunction unsatisfiable and corrupt ground truth. *)
              sp_min_bet = None;
              sp_memo_gate = None;
            }
          in
          assert (Contracts.ground_truth spec cls = vulnerable);
          let sample = build_sample !id cls vulnerable spec in
          (* The §4.3 injection: an unreachable-guarded equality chain on
             the payload fields, at the bytecode level, at the entry of
             the eosponser. *)
          let checks =
            Verification.random_checks rng
              ~targets:Verification.payload_targets
              ~depth:(2 + Wasai_support.Rand.int rng 2)
          in
          { sample with smp_module = Verification.inject sample.smp_module checks }))
    verification_counts

(** The RQ1 coverage set: 100 branch-rich "real-world-like" contracts. *)
let coverage_set ?(seed = 44L) ?(count = 100) () : sample list =
  let rng = Wasai_support.Rand.create seed in
  List.init count (fun k ->
      let account = Name.of_string (Wasai_support.Rand.eosio_name_string rng 10) in
      (* The deep structure is the milestone tree; field-level entry
         checks and memo gates are omitted because they would contradict
         milestone bytes on the same fields and make depth unreachable
         for every tool. *)
      let spec =
        {
          (background rng account) with
          Contracts.sp_checks = [];
          sp_memo_gate = None;
          sp_db_gate = Wasai_support.Rand.flip rng ~p:0.5;
          sp_blockinfo = Wasai_support.Rand.flip rng ~p:0.3;
          sp_payout_inline = Wasai_support.Rand.flip rng ~p:0.5;
          sp_fake_eos_guard = Wasai_support.Rand.flip rng ~p:0.6;
          sp_fake_notif_guard = Wasai_support.Rand.flip rng ~p:0.6;
          sp_auth_check = Wasai_support.Rand.flip rng ~p:0.7;
          sp_milestones =
            Verification.random_milestones rng
              ~depth:(9 + Wasai_support.Rand.int rng 9);
          sp_claim_loop = Wasai_support.Rand.flip rng ~p:0.4;
        }
      in
      build_sample k Contracts.Fake_eos
        (Contracts.ground_truth spec Contracts.Fake_eos)
        spec)
