lib/benchgen/contracts.ml: Abi Int64 List Name String Wasai_eosio Wasai_wasm
