lib/wasm/memory.mli: Ast Types Values
