lib/eosio/chain.ml: Abi Action Buffer Database Hashtbl Int32 Int64 List Name Printf Queue Wasai_support Wasai_wasm
