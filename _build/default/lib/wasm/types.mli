(** Static types of the WebAssembly MVP: number types, function types,
    limits, and external (import/export) types.  EOSIO contracts only use
    the MVP feature set. *)

type num_type = I32 | I64 | F32 | F64

type value_type = num_type
(** MVP value types are exactly the number types. *)

type func_type = {
  params : value_type list;
  results : value_type list;
}

type limits = {
  lim_min : int;
  lim_max : int option;
}

type mutability = Immutable | Mutable

type global_type = {
  gt_mut : mutability;
  gt_type : value_type;
}

type table_type = { tbl_limits : limits }
type memory_type = { mem_limits : limits }

type extern_type =
  | Extern_func of func_type
  | Extern_table of table_type
  | Extern_memory of memory_type
  | Extern_global of global_type

val string_of_num_type : num_type -> string
val string_of_value_type : value_type -> string
val string_of_func_type : func_type -> string

val size_of_num_type : num_type -> int
(** Byte width in linear memory. *)

val is_int_type : value_type -> bool
val is_float_type : value_type -> bool

val func_type : ?results:value_type list -> value_type list -> func_type
(** [func_type params ~results] builds a function type ([results] defaults
    to none). *)

val equal_func_type : func_type -> func_type -> bool
val pp_num_type : Format.formatter -> num_type -> unit
val pp_func_type : Format.formatter -> func_type -> unit
