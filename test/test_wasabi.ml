(* Tests for the instrumentation pipeline: the instrumented module must be
   valid, behave identically to the original, survive a binary round-trip,
   and emit a well-formed trace for exactly the target contract. *)

open Wasai_eosio
module Wasm = Wasai_wasm
module Wasabi = Wasai_wasabi

let n = Name.of_string

(* A contract computing 7! through a helper function, with a branch on the
   action name, exercising calls, loops, br_if, memory and the DB. *)
let build_test_contract () =
  let open Wasm.Builder in
  let open Wasm.Builder.I in
  let b = create () in
  let i64t = Wasm.Types.I64 and i32t = Wasm.Types.I32 in
  let ft = Wasm.Types.func_type in
  let read_action_data =
    import_func b ~module_:"env" ~name:"read_action_data"
      (ft [ i32t; i32t ] ~results:[ i32t ])
  in
  let printi = import_func b ~module_:"env" ~name:"printi" (ft [ i64t ]) in
  add_memory b 1;
  let fact =
    add_func b ~name:"fact" ~locals:[ i64t ]
      (ft [ i64t ] ~results:[ i64t ])
      [
        i64 1L; local_set 1;
        block
          [
            loop
              [
                local_get 0; i64_eqz; br_if 1;
                local_get 1; local_get 0; i64_mul; local_set 1;
                local_get 0; i64 1L; i64_sub; local_set 0;
                br 0;
              ];
          ];
        local_get 1;
      ]
  in
  let apply =
    add_func b ~name:"apply" (ft [ i64t; i64t; i64t ])
      [
        local_get 2; i64 (n "transfer"); i64_eq;
        if_
          [
            i32 0; i32 8; call read_action_data; drop;
            (* fact(from & 0xF): keeps the loop bounded for any payer name *)
            i32 0; i64_load (); i64 15L; i64_and; call fact; call printi;
          ]
          [];
      ]
  in
  export_func b "apply" apply;
  ignore fact;
  build b

let instrumented_meta () =
  let m = build_test_contract () in
  let bin = Wasm.Encode.encode m in
  let bin', meta = Wasabi.Instrument.instrument_binary bin in
  (bin', meta)

let test_instrumented_valid () =
  let bin', meta = instrumented_meta () in
  Wasm.Validate.check_module meta.Wasabi.Trace.instrumented;
  (* Re-encoded binary decodes to the same module. *)
  let decoded = Wasm.Decode.decode bin' in
  Alcotest.(check bool) "binary roundtrip" true
    (decoded = meta.Wasabi.Trace.instrumented)

let test_hook_imports_present () =
  let _, meta = instrumented_meta () in
  let m = meta.Wasabi.Trace.instrumented in
  let wasai_imports =
    List.filter
      (fun (i : Wasm.Ast.import) -> i.Wasm.Ast.imp_module = "wasai")
      m.Wasm.Ast.imports
  in
  Alcotest.(check int) "9 hooks" 9 (List.length wasai_imports);
  (* Original env imports keep their leading positions. *)
  match m.Wasm.Ast.imports with
  | first :: _ ->
      Alcotest.(check string) "env import first" "env" first.Wasm.Ast.imp_module
  | [] -> Alcotest.fail "no imports"

(* Execute a transfer action against the deployed (instrumented or not)
   contract and return (tx result, console, trace records). *)
let run_contract ?(instrument = true) () =
  let chain = Host.create_chain () in
  let collector = Wasabi.Trace.create () in
  let m = build_test_contract () in
  let meta =
    if instrument then begin
      let _, meta = Wasabi.Instrument.instrument (Wasm.Decode.decode (Wasm.Encode.encode m)) in
      Chain.register_extension chain
        (Wasabi.Instrument.runtime_extension collector ~target:(n "victim"));
      Chain.set_code chain (n "victim") meta.Wasabi.Trace.instrumented
        { Abi.abi_actions = [ Abi.transfer_action ] };
      Some meta
    end
    else begin
      Chain.set_code chain (n "victim") m
        { Abi.abi_actions = [ Abi.transfer_action ] };
      None
    end
  in
  let act =
    Action.of_args ~account:(n "victim") ~name:Name.transfer
      ~args:
        [
          Abi.V_name (Name.of_string "...ah")  (* encodes a small integer *);
          Abi.V_name (n "victim");
          Abi.V_asset (Asset.eos_of_units 1L);
          Abi.V_string "";
        ]
      ~auth:[ n "alice" ]
  in
  (* Use a from-name whose u64 encoding is small so fact() terminates:
     craft data directly instead. *)
  let data =
    Abi.serialize
      [
        Abi.V_u64 7L;
        Abi.V_name (n "victim");
        Abi.V_asset (Asset.eos_of_units 1L);
        Abi.V_string "";
      ]
  in
  let act = { act with Action.act_data = data } in
  let r = Chain.push_action chain act in
  (r, Chain.console_output chain, Wasabi.Trace.Compat.drain collector, meta)

let test_behaviour_preserved () =
  let r1, console1, _, _ = run_contract ~instrument:false () in
  let r2, console2, trace, _ = run_contract ~instrument:true () in
  Alcotest.(check bool) "plain ok" true r1.Chain.tx_ok;
  Alcotest.(check bool) "instrumented ok" true r2.Chain.tx_ok;
  Alcotest.(check string) "console identical (7! = 5040)" "5040" console1;
  Alcotest.(check string) "instrumented console identical" console1 console2;
  Alcotest.(check bool) "trace nonempty" true (List.length trace > 50)

let test_trace_structure () =
  let _, _, trace, meta = run_contract ~instrument:true () in
  let meta = Option.get meta in
  (* First record: function_begin of the exported apply. *)
  (match trace with
   | Wasabi.Trace.R_func_begin f :: _ ->
       Alcotest.(check (option string)) "apply begins" (Some "apply")
         (Wasm.Ast.func_name_at meta.Wasabi.Trace.instrumented f)
   | _ -> Alcotest.fail "trace does not start with function_begin");
  (* Balanced function_begin/function_end. *)
  let depth = ref 0 and min_depth = ref 0 in
  List.iter
    (fun r ->
      match r with
      | Wasabi.Trace.R_func_begin _ -> incr depth
      | Wasabi.Trace.R_func_end _ ->
          decr depth;
          if !depth < !min_depth then min_depth := !depth
      | _ -> ())
    trace;
  Alcotest.(check int) "begin/end balanced" 0 !depth;
  Alcotest.(check int) "never negative" 0 !min_depth;
  (* call_pre for fact carries the argument 7. *)
  let fact_pre =
    List.exists
      (fun r ->
        match r with
        | Wasabi.Trace.R_call_pre { args = [ Wasm.Values.I64 7L ]; _ } -> true
        | _ -> false)
      trace
  in
  Alcotest.(check bool) "fact(7) call_pre observed" true fact_pre;
  (* The i64.mul sites carry two i64 operands. *)
  let muls =
    List.filter_map
      (fun r ->
        match r with
        | Wasabi.Trace.R_instr { site; ops } -> (
            match (Wasabi.Trace.site_of meta site).Wasabi.Trace.site_instr with
            | Wasm.Ast.Int_binary (Wasm.Types.I64, Wasm.Ast.Mul) -> Some ops
            | _ -> None)
        | _ -> None)
      trace
  in
  Alcotest.(check int) "seven multiplications" 7 (List.length muls);
  List.iter
    (fun ops -> Alcotest.(check int) "two operands" 2 (List.length ops))
    muls;
  (* Product of first operands replays 7!: 1*7, 7*6, 42*5 ... *)
  (match muls with
   | [ Wasm.Values.I64 a; Wasm.Values.I64 b ] :: _ ->
       Alcotest.(check int64) "first mul 1*7" 7L (Int64.mul a b)
   | _ -> Alcotest.fail "bad mul operands")

let test_trace_only_target () =
  (* The eosio.token native contract runs in the same transaction; only the
     victim's instructions may appear in the trace. *)
  let chain = Host.create_chain () in
  Token.bootstrap chain ~treasury:(n "treasury") ~supply:1_000_0000L;
  let collector = Wasabi.Trace.create () in
  let m = build_test_contract () in
  let m', meta = Wasabi.Instrument.instrument m in
  Chain.register_extension chain
    (Wasabi.Instrument.runtime_extension collector ~target:(n "victim"));
  Chain.set_code chain (n "victim") m' { Abi.abi_actions = [ Abi.transfer_action ] };
  let r =
    Chain.push_action chain
      (Token.transfer_action ~token:Name.eosio_token ~from:(n "treasury")
         ~to_:(n "victim") ~quantity:(Asset.eos_of_units 3L) ~memo:"x")
  in
  Alcotest.(check bool) "tx ok" true r.Chain.tx_ok;
  let trace = Wasabi.Trace.Compat.drain collector in
  Alcotest.(check bool) "victim trace captured" true (List.length trace > 0);
  List.iter
    (fun rec_ ->
      match Wasabi.Trace.record_site rec_ with
      | Some site ->
          let s = Wasabi.Trace.site_of meta site in
          ignore s.Wasabi.Trace.site_func
      | None -> ())
    trace

let test_coverage_counting () =
  (* Distinct conditional sites with direction form the coverage domain. *)
  let _, _, trace, meta = run_contract ~instrument:true () in
  let meta = Option.get meta in
  let branches = Hashtbl.create 16 in
  List.iter
    (fun r ->
      match r with
      | Wasabi.Trace.R_instr { site; ops } -> (
          match (Wasabi.Trace.site_of meta site).Wasabi.Trace.site_instr with
          | Wasm.Ast.Br_if _ | Wasm.Ast.If _ -> (
              match ops with
              | [ Wasm.Values.I32 c ] ->
                  Hashtbl.replace branches (site, c <> 0l) ()
              | _ -> ())
          | _ -> ())
      | _ -> ())
    trace;
  (* The loop's br_if is false 7 times then true once: 2 directions, plus
     the action-name if: ≥ 3 distinct branches. *)
  Alcotest.(check bool) "≥3 distinct branches" true (Hashtbl.length branches >= 3)

(* Property: on straight-line code, the trace contains exactly one R_instr
   per original instruction executed, in program order, with the operand
   values of a reference evaluation. *)
let qcheck_trace_complete =
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 25)
        (oneofl
           Wasai_wasm.Builder.I.
             [ i64_add; i64_sub; i64_mul; i64_and; i64_or; i64_xor ]))
  in
  QCheck.Test.make ~name:"one trace record per executed instruction" ~count:60
    (QCheck.make
       QCheck.Gen.(pair gen (list_size (int_range 0 25) (map Int64.of_int int))))
    (fun (ops, seeds) ->
      (* Build a body: push (n_ops + 1) constants, fold with the ops. *)
      let consts =
        List.init (List.length ops + 1) (fun i ->
            Wasai_wasm.Builder.I.i64
              (try List.nth seeds i with _ -> Int64.of_int i))
      in
      let body = consts @ ops @ [ Wasai_wasm.Builder.I.drop ] in
      let b = Wasai_wasm.Builder.create () in
      let f =
        Wasai_wasm.Builder.add_func b ~name:"f"
          (Wasai_wasm.Types.func_type [])
          body
      in
      Wasai_wasm.Builder.export_func b "f" f;
      let m = Wasai_wasm.Builder.build b in
      let m', meta = Wasabi.Instrument.instrument m in
      Wasai_wasm.Validate.check_module m';
      (* Run the instrumented module with a local collector. *)
      let collector = Wasabi.Trace.create () in
      let resolver mod_name item =
        if mod_name <> "wasai" then None
        else
          let ft1 ty = Wasai_wasm.Types.func_type [ ty ] in
          let mk ty fn =
            Some
              (Wasm.Interp.Extern_func
                 { Wasm.Interp.hf_name = item; hf_type = ft1 ty; hf_fn = fn })
          in
          match item with
          | "site" ->
              mk Wasai_wasm.Types.I32 (fun _ args ->
                  Wasabi.Trace.begin_instr collector
                    (Int32.to_int (Wasm.Values.as_i32 (List.hd args)));
                  [])
          | "op_i32" | "op_i64" | "op_f32" | "op_f64" ->
              let ty =
                match item with
                | "op_i32" -> Wasai_wasm.Types.I32
                | "op_i64" -> Wasai_wasm.Types.I64
                | "op_f32" -> Wasai_wasm.Types.F32
                | _ -> Wasai_wasm.Types.F64
              in
              mk ty (fun _ args ->
                  Wasabi.Trace.operand collector (List.hd args);
                  [])
          | "call_pre" ->
              mk Wasai_wasm.Types.I32 (fun _ args ->
                  Wasabi.Trace.begin_call_pre collector
                    (Int32.to_int (Wasm.Values.as_i32 (List.hd args)));
                  [])
          | "call_post" ->
              mk Wasai_wasm.Types.I32 (fun _ args ->
                  Wasabi.Trace.begin_call_post collector
                    (Int32.to_int (Wasm.Values.as_i32 (List.hd args)));
                  [])
          | "func_begin" ->
              mk Wasai_wasm.Types.I32 (fun _ args ->
                  Wasabi.Trace.func_begin collector
                    (Int32.to_int (Wasm.Values.as_i32 (List.hd args)));
                  [])
          | "func_end" ->
              mk Wasai_wasm.Types.I32 (fun _ args ->
                  Wasabi.Trace.func_end collector
                    (Int32.to_int (Wasm.Values.as_i32 (List.hd args)));
                  [])
          | _ -> None
      in
      let inst = Wasm.Interp.instantiate resolver m' in
      ignore (Wasm.Interp.invoke_export inst "f" []);
      let records = Wasabi.Trace.Compat.drain collector in
      let instrs =
        List.filter_map
          (fun r ->
            match r with
            | Wasabi.Trace.R_instr { site; ops } ->
                Some ((Wasabi.Trace.site_of meta site).Wasabi.Trace.site_instr, ops)
            | _ -> None)
          records
      in
      (* Exactly one record per original instruction, in program order. *)
      List.length instrs = List.length body
      && List.for_all2
           (fun (traced, _) original -> traced = original)
           instrs body
      (* Reference evaluation of the operand stream: each binary op's
         operands must match a direct fold. *)
      &&
      let stack = ref [] in
      List.for_all2
        (fun (instr, ops) _ ->
          match (instr : Wasai_wasm.Ast.instr) with
          | Wasai_wasm.Ast.Const (Wasm.Values.I64 v) ->
              stack := v :: !stack;
              true
          | Wasai_wasm.Ast.Int_binary (Wasai_wasm.Types.I64, op) -> (
              match (!stack, ops) with
              | b :: a :: rest, [ Wasm.Values.I64 oa; Wasm.Values.I64 ob ] ->
                  let result =
                    match op with
                    | Wasai_wasm.Ast.Add -> Int64.add a b
                    | Wasai_wasm.Ast.Sub -> Int64.sub a b
                    | Wasai_wasm.Ast.Mul -> Int64.mul a b
                    | Wasai_wasm.Ast.And -> Int64.logand a b
                    | Wasai_wasm.Ast.Or -> Int64.logor a b
                    | Wasai_wasm.Ast.Xor -> Int64.logxor a b
                    | _ -> 0L
                  in
                  stack := result :: rest;
                  oa = a && ob = b
              | _ -> false)
          | Wasai_wasm.Ast.Drop ->
              stack := List.tl !stack;
              true
          | _ -> true)
        instrs body)

(* ------------------------------------------------------------------ *)
(* Event buffer vs reference list collector                             *)
(* ------------------------------------------------------------------ *)

(* Reference reimplementation of the historical list collector — the
   oracle the flat event buffer is property-tested against.  The
   semantics the buffer must replicate exactly: a record under
   construction is only flushed by the next successful append; past the
   event limit, appends are silent no-ops that do NOT flush, so
   post-limit operands still attach to the last pre-limit
   operand-bearing record; operands arriving while no operand-bearing
   record is pending are dropped. *)
module Ref_collector = struct
  type pending =
    | P_none
    | P_instr of int * Wasm.Values.value list  (* site, operands reversed *)
    | P_pre of int * Wasm.Values.value list
    | P_post of int * Wasm.Values.value list

  type t = {
    mutable rev : Wasabi.Trace.record list;
    mutable pending : pending;
    mutable count : int;
    mutable trunc : bool;
    limit : int;
  }

  let create ~limit = { rev = []; pending = P_none; count = 0; trunc = false; limit }

  let flush t =
    (match t.pending with
     | P_none -> ()
     | P_instr (site, ops) ->
         t.rev <- Wasabi.Trace.R_instr { site; ops = List.rev ops } :: t.rev
     | P_pre (site, args) ->
         t.rev <- Wasabi.Trace.R_call_pre { site; args = List.rev args } :: t.rev
     | P_post (site, results) ->
         t.rev <- Wasabi.Trace.R_call_post { site; results = List.rev results } :: t.rev);
    t.pending <- P_none

  let begin_ t mk site =
    if t.count < t.limit then begin
      flush t;
      t.pending <- mk site;
      t.count <- t.count + 1
    end
    else t.trunc <- true

  let begin_instr t site = begin_ t (fun s -> P_instr (s, [])) site
  let begin_call_pre t site = begin_ t (fun s -> P_pre (s, [])) site
  let begin_call_post t site = begin_ t (fun s -> P_post (s, [])) site

  let operand t v =
    match t.pending with
    | P_none -> ()
    | P_instr (s, ops) -> t.pending <- P_instr (s, v :: ops)
    | P_pre (s, ops) -> t.pending <- P_pre (s, v :: ops)
    | P_post (s, ops) -> t.pending <- P_post (s, v :: ops)

  let emit t r =
    if t.count < t.limit then begin
      flush t;
      t.rev <- r :: t.rev;
      t.count <- t.count + 1
    end
    else t.trunc <- true

  let func_begin t f = emit t (Wasabi.Trace.R_func_begin f)
  let func_end t f = emit t (Wasabi.Trace.R_func_end f)

  let drain t =
    flush t;
    List.rev t.rev
end

type hook_call =
  | H_instr of int
  | H_pre of int
  | H_post of int
  | H_operand of Wasm.Values.value
  | H_func_begin of int
  | H_func_end of int

let gen_value =
  QCheck.Gen.(
    map
      (fun (k, v) ->
        let v64 = Int64.of_int v in
        match k with
        | 0 -> Wasm.Values.I32 (Int64.to_int32 v64)
        | 1 -> Wasm.Values.I64 v64
        | 2 -> Wasm.Values.F32 (Wasm.Values.to_f32 (Int64.to_float v64))
        | _ -> Wasm.Values.F64 (Int64.to_float v64))
      (pair (int_range 0 3) int))

let gen_hook_call =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun s -> H_instr (abs s mod 1000)) int);
        (1, map (fun s -> H_pre (abs s mod 1000)) int);
        (1, map (fun s -> H_post (abs s mod 1000)) int);
        (4, map (fun v -> H_operand v) gen_value);
        (1, map (fun f -> H_func_begin (abs f mod 50)) int);
        (1, map (fun f -> H_func_end (abs f mod 50)) int);
      ])

let apply_to_buffer buf = function
  | H_instr s -> Wasabi.Trace.Buffer.begin_instr buf s
  | H_pre s -> Wasabi.Trace.Buffer.begin_call_pre buf s
  | H_post s -> Wasabi.Trace.Buffer.begin_call_post buf s
  | H_operand v -> Wasabi.Trace.Buffer.operand buf v
  | H_func_begin f -> Wasabi.Trace.Buffer.func_begin buf f
  | H_func_end f -> Wasabi.Trace.Buffer.func_end buf f

let apply_to_ref rc = function
  | H_instr s -> Ref_collector.begin_instr rc s
  | H_pre s -> Ref_collector.begin_call_pre rc s
  | H_post s -> Ref_collector.begin_call_post rc s
  | H_operand v -> Ref_collector.operand rc v
  | H_func_begin f -> Ref_collector.func_begin rc f
  | H_func_end f -> Ref_collector.func_end rc f

(* The buffer must agree with the reference collector on arbitrary hook
   streams and arbitrary (small) event limits — including the
   truncation-edge behaviours — and its cursor accessors must be
   consistent with its own compat view. *)
let qcheck_buffer_matches_reference =
  QCheck.Test.make
    ~name:"event buffer = reference list collector (with limits)" ~count:300
    (QCheck.make
       QCheck.Gen.(
         pair (int_range 0 40) (list_size (int_range 0 150) gen_hook_call)))
    (fun (limit, calls) ->
      let module B = Wasabi.Trace.Buffer in
      let module C = Wasabi.Trace.Compat in
      let buf = B.create ~limit () in
      let rc = Ref_collector.create ~limit in
      List.iter (fun c -> apply_to_buffer buf c; apply_to_ref rc c) calls;
      let expected = Ref_collector.drain rc in
      let got = C.to_list buf in
      got = expected
      && B.truncated buf = rc.Ref_collector.trunc
      && B.length buf = List.length expected
      (* Cursor accessors agree with the compat view. *)
      && (let ok = ref true in
          List.iteri
            (fun i r ->
              if C.record_of buf i <> r then ok := false;
              for j = 0 to B.op_count buf i - 1 do
                if B.op_bits buf i j <> Wasm.Values.raw_bits (B.op buf i j)
                then ok := false
              done)
            got;
          !ok)
      (* of_records replays any collector output to itself. *)
      && C.to_list (C.of_records expected) = expected
      (* reset rewinds in place: replaying the stream reproduces it. *)
      && (B.reset buf;
          List.iter (apply_to_buffer buf) calls;
          C.to_list buf = expected && B.truncated buf = rc.Ref_collector.trunc))

(* The corpus dedupe key: FNV-1a 64 over the canonicalised edge set.
   Order- and duplicate-insensitive, pinned to a concrete value so a
   corpus written by an older build still deduplicates against this
   one. *)
let test_edge_signature () =
  let edges = [ (3, 1l); (1, 0l); (2, 1l) ] in
  let s = Wasabi.Trace.edge_signature edges in
  Alcotest.(check int64) "order-insensitive" s
    (Wasabi.Trace.edge_signature [ (1, 0l); (2, 1l); (3, 1l) ]);
  Alcotest.(check int64) "duplicate-insensitive" s
    (Wasabi.Trace.edge_signature ((2, 1l) :: edges));
  Alcotest.(check bool) "direction-sensitive" true
    (s <> Wasabi.Trace.edge_signature [ (1, 1l); (2, 1l); (3, 1l) ]);
  Alcotest.(check int64) "empty set hashes to the FNV offset"
    0xcbf29ce484222325L
    (Wasabi.Trace.edge_signature []);
  Alcotest.(check int64) "pinned value" 0x5f242d39c2422be4L
    (Wasabi.Trace.edge_signature [ (1, 0l) ])

let () =
  Alcotest.run "wasai_wasabi"
    [
      ( "instrument",
        [
          Alcotest.test_case "valid + binary roundtrip" `Quick
            test_instrumented_valid;
          Alcotest.test_case "hook imports" `Quick test_hook_imports_present;
          Alcotest.test_case "behaviour preserved" `Quick test_behaviour_preserved;
        ] );
      ( "trace",
        [
          Alcotest.test_case "structure" `Quick test_trace_structure;
          Alcotest.test_case "only target traced" `Quick test_trace_only_target;
          Alcotest.test_case "coverage counting" `Quick test_coverage_counting;
          Alcotest.test_case "edge signature" `Quick test_edge_signature;
          QCheck_alcotest.to_alcotest qcheck_trace_complete;
          QCheck_alcotest.to_alcotest qcheck_buffer_matches_reference;
        ] );
    ]
