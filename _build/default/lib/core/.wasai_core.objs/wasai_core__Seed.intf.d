lib/core/seed.mli: Abi Name Wasai_eosio Wasai_support
