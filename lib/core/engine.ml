(** The WASAI engine: Algorithm 1 of the paper.

    Per fuzzing target: instrument the bytecode, boot a local chain with
    the auxiliary contracts the adversary oracles need (the official
    token, an attacker token issuing fake "EOS", a notification-forwarding
    agent), then loop: select a seed honouring transaction dependencies,
    deliver it through a rotating adversary channel, capture the trace,
    feed the scanner, replay the trace symbolically and solve flipped
    branch constraints into adaptive seeds. *)

module Wasm = Wasai_wasm
module Wasabi = Wasai_wasabi
module Sym = Wasai_symbolic
module Solver = Wasai_smt.Solver
module Telemetry = Wasai_telemetry.Telemetry
open Wasai_eosio

type config = {
  cfg_rounds : int;  (** iteration budget, standing in for the 5-min timeout *)
  cfg_time_limit : float option;
      (** optional wall-clock cap in seconds (the paper's per-contract
          timeout); whichever of rounds/time runs out first stops the loop *)
  cfg_rng_seed : int64;
  cfg_solver_budget : int;  (** SAT conflicts, standing in for 3,000 ms *)
  cfg_max_flips : int;  (** solved branches per execution *)
  cfg_fuel : int;
  cfg_feedback : bool;  (** symbolic feedback (off = blind fuzzing ablation) *)
  cfg_preload : (Name.t * Abi.value list) list;
      (** corpus seeds injected into the pool before fresh generation *)
  cfg_backend : Exec_backend.choice;
      (** execution tier for the target's instrumented module *)
}

let default_config =
  {
    cfg_rounds = 60;
    cfg_time_limit = None;
    cfg_rng_seed = 1L;
    cfg_solver_budget = 20_000;
    cfg_max_flips = 6;
    cfg_fuel = 30_000_000;
    cfg_feedback = true;
    cfg_preload = [];
    cfg_backend = Exec_backend.Auto;
  }

type config_error =
  | Bad_rounds of int
  | Bad_time_limit of float
  | Bad_solver_budget of int
  | Bad_max_flips of int
  | Bad_fuel of int
  | Bad_preload

exception Invalid_config of config_error

let string_of_config_error = function
  | Bad_rounds n -> Printf.sprintf "cfg_rounds must be >= 1 (got %d)" n
  | Bad_time_limit t ->
      Printf.sprintf "cfg_time_limit must be > 0 (got %g)" t
  | Bad_solver_budget n ->
      Printf.sprintf "cfg_solver_budget must be >= 1 (got %d)" n
  | Bad_max_flips n -> Printf.sprintf "cfg_max_flips must be >= 1 (got %d)" n
  | Bad_fuel n -> Printf.sprintf "cfg_fuel must be >= 1 (got %d)" n
  | Bad_preload -> "cfg_preload given explicitly but holds no seeds"

(* Validating constructor: every CLI/bench/test entry point builds its
   config here so a nonsensical knob fails loudly at startup instead of
   producing a silently-degenerate run (0 rounds looks like "nothing
   vulnerable"; 0 fuel makes every payload an exhaustion). *)
let make_config ?(rounds = default_config.cfg_rounds) ?time_limit
    ?(rng_seed = default_config.cfg_rng_seed)
    ?(solver_budget = default_config.cfg_solver_budget)
    ?(max_flips = default_config.cfg_max_flips)
    ?(fuel = default_config.cfg_fuel)
    ?(feedback = default_config.cfg_feedback) ?preload
    ?(backend = default_config.cfg_backend) () =
  if rounds < 1 then raise (Invalid_config (Bad_rounds rounds));
  (match time_limit with
  | Some t when t <= 0.0 -> raise (Invalid_config (Bad_time_limit t))
  | _ -> ());
  if solver_budget < 1 then
    raise (Invalid_config (Bad_solver_budget solver_budget));
  if max_flips < 1 then raise (Invalid_config (Bad_max_flips max_flips));
  if fuel < 1 then raise (Invalid_config (Bad_fuel fuel));
  let preload =
    match preload with
    | None -> []
    | Some [] -> raise (Invalid_config Bad_preload)
    | Some seeds -> seeds
  in
  {
    cfg_rounds = rounds;
    cfg_time_limit = time_limit;
    cfg_rng_seed = rng_seed;
    cfg_solver_budget = solver_budget;
    cfg_max_flips = max_flips;
    cfg_fuel = fuel;
    cfg_feedback = feedback;
    cfg_preload = preload;
    cfg_backend = backend;
  }

type target = {
  tgt_account : Name.t;
  tgt_module : Wasm.Ast.module_;
  tgt_abi : Abi.t;
}

(** A seed whose executions explored at least one previously-uncovered
    branch edge — the unit a persistent corpus stores. *)
type interesting = {
  is_round : int;  (** round that executed it *)
  is_action : Name.t;
  is_args : Abi.value list;
  is_cover : (int * int32) list;
      (** every (site, direction) edge its executions touched, sorted *)
  is_signature : int64;  (** [Wasabi.Trace.edge_signature is_cover] *)
  is_new_edges : int;  (** edges of [is_cover] that were new *)
}

type outcome = {
  out_flags : (Scanner.flag * bool) list;
  out_custom : (string * bool) list;  (** verdicts of registered custom oracles *)
  out_exploits : (Scanner.flag * Scanner.evidence) list;
      (** the exploit payload behind every positive verdict *)
  out_branches : int;  (** distinct (site, direction) pairs explored *)
  out_timeline : (int * float * int) list;
      (** (round, elapsed seconds, cumulative branches) *)
  out_rounds : int;
  out_seeds_total : int;
  out_adaptive_seeds : int;
  out_transactions : int;
  out_solver_sat : int;
  out_imprecise : int;
  out_solver : Solver.stats;
      (** per-run solver counters (quick-path / blasted / unknown /
          cache hits / cache misses) from the run's solver session *)
  out_interesting : interesting list;
      (** coverage-advancing seeds, in discovery order; their covers
          union to the final branch set (every edge was new exactly
          once, under the seed that introduced it) *)
  out_verdict_round : int;
      (** 1-based round after which the final verdict set was complete
          (0 when nothing ever fired) *)
  out_final_budget : int;
      (** the solver conflict budget after adaptive retuning *)
  out_truncated : int;
      (** payloads whose trace hit the collector limit and was cut
          short — verdicts over those traces are best-effort *)
  out_first_truncated : (int * Name.t) option;
      (** the first such payload: (1-based transaction ordinal, action) *)
}

(* Well-known session accounts. *)
let attacker = Name.of_string "attacker"
let player_one = Name.of_string "playerone"
let player_two = Name.of_string "playertwo"
let treasury = Name.of_string "treasury"
let fake_token = Name.of_string "fake.token"
let fake_notif = Name.of_string "fake.notif"

type session = {
  cfg : config;
  target : target;
  chain : Chain.t;
  collector : Wasabi.Trace.t;
  meta : Wasabi.Trace.meta;
  scanner : Scanner.t;
  dbg : Dbg.t;
  pool : Seed.pool;
  rng : Wasai_support.Rand.t;
  identities : Name.t list;
  branches : (int * int32, unit) Hashtbl.t;
  solver : Solver.Session.t;
  exec_stage : Telemetry.stage;
      (** the telemetry stage payload execution is attributed to — fixed
          per session by the resolved execution backend *)
  mutable adaptive_seeds : int;
  mutable transactions : int;
  mutable solver_sat : int;
  mutable imprecise : int;
  mutable truncated_payloads : int;
      (** payloads whose trace hit the collector limit *)
  mutable first_truncated : (int * Name.t) option;
      (** (transaction ordinal, action) of the first truncated payload *)
  mutable current_action : Name.t;  (** for DBG attribution *)
  db_find_import : int option;
  seen_seeds : (string, unit) Hashtbl.t;  (** dedup of generated argument vectors *)
}

(* The notification-forwarding agent of the Fake Notif oracle (§2.3.2):
   on a genuine eosio.token transfer notification it forwards the
   notification to the victim, with [code] still eosio.token. *)
let agent_apply ~victim (ctx : Chain.context) =
  if
    Name.equal ctx.Chain.ctx_code Name.eosio_token
    && Name.equal ctx.Chain.ctx_action.Action.act_name Name.transfer
    && Name.equal ctx.Chain.ctx_receiver fake_notif
  then Queue.add victim ctx.Chain.ctx_notify

(* Adversary identities are funded to the hilt so any positive payload
   amount the solver picks (below 2^61 units) can actually be paid —
   attackers on a test chain issue themselves arbitrary balances. *)
let funding = 0x1000_0000_0000_0000L (* 2^60 units each *)

let setup ?(profile : Chain_profile.t option) ?(cell : int option)
    (cfg : config) (target : target) : session =
  let chain = Host.create_chain ~fuel_per_action:cfg.cfg_fuel () in
  Token.bootstrap chain ~treasury ~supply:0x4000_0000_0000_0000L;
  List.iter
    (fun a -> ignore (Chain.create_account chain a))
    [ attacker; player_one; player_two; target.tgt_account; fake_token; fake_notif ];
  (* Fund the adversary identities and give the victim a working float so
     payouts can succeed (and sometimes overdraw). *)
  List.iter
    (fun owner ->
      let r =
        Chain.push_action chain
          (Token.transfer_action ~token:Name.eosio_token ~from:treasury ~to_:owner
             ~quantity:(Asset.eos_of_units funding) ~memo:"fund")
      in
      ignore r)
    [ attacker; player_one; player_two ];
  (* The victim is funded directly at the token table: transferring to it
     would already trigger its eosponser. *)
  Token.set_balance chain ~token:Name.eosio_token ~owner:target.tgt_account
    ~symbol:Asset.Symbol.eos 500_0000L;
  (* Attacker token issuing fake EOS. *)
  Token.deploy chain fake_token;
  ignore
    (Chain.push_action chain
       (Action.of_args ~account:fake_token ~name:(Name.of_string "create")
          ~args:
            [ Abi.V_name attacker; Abi.V_asset (Asset.eos_of_units 1_000_000_0000L) ]
          ~auth:[ fake_token ]));
  ignore
    (Chain.push_action chain
       (Action.of_args ~account:fake_token ~name:(Name.of_string "issue")
          ~args:
            [
              Abi.V_name attacker;
              Abi.V_asset (Asset.eos_of_units 1_000_000_0000L);
              Abi.V_string "";
            ]
          ~auth:[ attacker ]));
  (* Notification-forwarding agent. *)
  Chain.set_native chain fake_notif
    (agent_apply ~victim:target.tgt_account)
    { Abi.abi_actions = [] };
  (* Instrument the target through the real binary pipeline. *)
  let bin = Wasm.Encode.encode target.tgt_module in
  let t_instr = Telemetry.start () in
  let _bin', meta = Wasabi.Instrument.instrument_binary bin in
  Telemetry.stop Telemetry.Instrument t_instr;
  Chain.set_code chain target.tgt_account meta.Wasabi.Trace.instrumented
    target.tgt_abi;
  let collector = Wasabi.Trace.create () in
  Chain.register_extension chain
    (Wasabi.Instrument.runtime_extension collector ~target:target.tgt_account);
  (* The executor must be installed after [set_code] (deploying resets
     it).  The compiled tier binds the instrumentation hooks straight to
     the collector — sound here because only the target account gets the
     executor, and the receiver of every action reaching it is the
     target itself. *)
  Exec_backend.install cfg.cfg_backend ~collector chain target.tgt_account
    meta.Wasabi.Trace.instrumented;
  let scanner =
    Scanner.create ?profile ~fake_token_account:fake_token ~meta
      ~victim:target.tgt_account ~fake_notif_agent:fake_notif ()
  in
  (* Determinism contract: the per-target RNG seed is derived from the
     pair (cfg_rng_seed, tgt_account) alone — never from global state or
     from how many targets ran before this one — so a campaign scheduled
     over N domains produces the same per-target verdicts as a serial
     run.  A partitioned run ([cell = Some c]) folds the cell index into
     the derivation instead: every cell of the round space owns a stream
     that depends only on the triple (seed, target, cell), never on
     which slice grouping or worker executes it. *)
  let rng =
    Wasai_support.Rand.create
      (match cell with
      | None -> Wasai_support.Rand.mix cfg.cfg_rng_seed target.tgt_account
      | Some c ->
          Wasai_support.Rand.mix3 cfg.cfg_rng_seed target.tgt_account
            (Int64.of_int c))
  in
  let identities = [ attacker; player_one; player_two; target.tgt_account ] in
  let pool = Seed.create_pool () in
  (* Algorithm 1 line 2: fill seeds with random data. *)
  List.iter
    (fun (def : Abi.action_def) ->
      for _ = 1 to 3 do
        Seed.add pool (Seed.random rng ~identities def)
      done)
    target.tgt_abi.Abi.abi_actions;
  (* Corpus preloads ride on top of — never instead of — the random fill,
     and consume no randomness: a warm pool draws exactly the random
     values a cold pool would, which the warm-vs-cold determinism
     argument depends on. *)
  let preload = Hashtbl.create 16 in
  List.iter
    (fun ((action, args) : Name.t * Abi.value list) ->
      match Abi.find_action target.tgt_abi action with
      | Some def
        when List.map Abi.type_of_value args = List.map snd def.Abi.act_params
        ->
          (* Imported seeds take fresh priority.  The dedup table is local
             to the preload: feedback must stay free to re-derive one of
             these vectors later as an adaptive seed — a trace is a
             function of chain state (tables, block info), so the round-0
             replay does not subsume the original mid-run execution. *)
          let key = Name.to_string action ^ "/" ^ Abi.serialize args in
          if not (Hashtbl.mem preload key) then begin
            Hashtbl.replace preload key ();
            Seed.add pool
              { Seed.sd_action = action; sd_args = args;
                sd_provenance = Seed.Imported }
          end
      | _ ->
          (* A corpus can outlive an ABI: seeds for actions or signatures
             this target no longer has are skipped, not fatal. *)
          ())
    cfg.cfg_preload;
  let session =
    {
      cfg;
      target;
      chain;
      collector;
      meta;
      scanner;
      dbg = Dbg.create ();
      pool;
      rng;
      identities;
      branches = Hashtbl.create 256;
      (* One solver session per engine run: its budget, counters and
         verdict cache are confined to this target on this domain, so
         caching cannot couple targets across a campaign's workers. *)
      solver = Solver.Session.create ~conflict_budget:cfg.cfg_solver_budget ();
      exec_stage =
        (match cfg.cfg_backend with
        | Exec_backend.Interp -> Telemetry.Exec_interp
        | Exec_backend.Compiled | Exec_backend.Auto -> Telemetry.Exec_compiled);
      adaptive_seeds = 0;
      transactions = 0;
      solver_sat = 0;
      imprecise = 0;
      truncated_payloads = 0;
      first_truncated = None;
      current_action = Name.transfer;
      db_find_import = Wasabi.Trace.find_env_import meta "db_find_i64";
      (* Deliberately NOT seeded with the preload keys: if feedback
         re-derives a corpus vector mid-run, the re-execution happens
         against the chain state that made it interesting, which the
         round-0 replay cannot reproduce. *)
      seen_seeds = Hashtbl.create 64;
    }
  in
  (* DBG: attribute the victim's DB accesses to the executing action. *)
  chain.Chain.db.Database.on_access <-
    Some
      (fun acc ->
        if Name.equal acc.Database.acc_code target.tgt_account then
          Dbg.record_access session.dbg ~action:session.current_action acc);
  session

(* ------------------------------------------------------------------ *)
(* Payload construction per adversary channel                          *)
(* ------------------------------------------------------------------ *)

let seed_field_asset (args : Abi.value list) =
  match List.find_opt (function Abi.V_asset _ -> true | _ -> false) args with
  | Some (Abi.V_asset a) -> a
  | _ -> Asset.eos_of_units 100L

let seed_field_string (args : Abi.value list) =
  match List.find_opt (function Abi.V_string _ -> true | _ -> false) args with
  | Some (Abi.V_string s) -> s
  | _ -> ""

(** The action pushed for a seed on a channel, plus the argument vector the
    victim's action function actually observes (needed as the concretise
    fallback for feedback). *)
let payload (s : session) (seed : Seed.t) (channel : Scanner.channel) :
    Action.t * Abi.value list =
  let quantity = seed_field_asset seed.Seed.sd_args in
  let memo = seed_field_string seed.Seed.sd_args in
  match channel with
  | Scanner.Ch_genuine ->
      ( Token.transfer_action ~token:Name.eosio_token ~from:attacker
          ~to_:s.target.tgt_account ~quantity ~memo,
        [
          Abi.V_name attacker;
          Abi.V_name s.target.tgt_account;
          Abi.V_asset quantity;
          Abi.V_string memo;
        ] )
  | Scanner.Ch_fake_token ->
      ( Token.transfer_action ~token:fake_token ~from:attacker
          ~to_:s.target.tgt_account ~quantity ~memo,
        [
          Abi.V_name attacker;
          Abi.V_name s.target.tgt_account;
          Abi.V_asset quantity;
          Abi.V_string memo;
        ] )
  | Scanner.Ch_fake_notif ->
      ( Token.transfer_action ~token:Name.eosio_token ~from:attacker
          ~to_:fake_notif ~quantity ~memo,
        [
          Abi.V_name attacker;
          Abi.V_name fake_notif;
          Abi.V_asset quantity;
          Abi.V_string memo;
        ] )
  | Scanner.Ch_direct ->
      (* The attacker declares the forged action as whatever actor the
         seed's [from] names — trivial on a chain where they can create
         arbitrary accounts. *)
      let auth =
        match seed.Seed.sd_args with
        | Abi.V_name from :: _ -> from
        | _ -> attacker
      in
      ( Action.of_args ~account:s.target.tgt_account ~name:Name.transfer
          ~args:seed.Seed.sd_args ~auth:[ auth ],
        seed.Seed.sd_args )
  | Scanner.Ch_action name ->
      let auth =
        match
          List.find_opt (function Abi.V_name _ -> true | _ -> false)
            seed.Seed.sd_args
        with
        | Some (Abi.V_name n) -> n
        | _ -> attacker
      in
      ( Action.of_args ~account:s.target.tgt_account ~name ~args:seed.Seed.sd_args
          ~auth:[ auth ],
        seed.Seed.sd_args )

(* ------------------------------------------------------------------ *)
(* Fused streaming trace scan                                          *)
(* ------------------------------------------------------------------ *)

module B = Wasabi.Trace.Buffer

(** Everything the engine extracts from one payload's trace, computed in
    a single streaming pass over the event buffer (what used to be four
    independent list walks: branch edges, coverage, the db_find read-miss
    machine, and the scanner's executed-function chain). *)
type scan = {
  sc_edges : (int * int32) list;
      (** (site, direction) edges in trace order, duplicates preserved —
          the currency of the live coverage map and corpus signatures *)
  sc_executed : int list;  (** function ids that began execution, in order *)
  sc_read_missed : int64 option;
      (** last table a db_find probed and missed (end iterator) *)
  sc_read_hit : int64 option;  (** last table a db_find probed and hit *)
}

(* Pure: folds the buffer once.  [db_find] is the absolute import index
   of env.db_find_i64 when the contract imports it. *)
let scan_trace ~(meta : Wasabi.Trace.meta) ?db_find (buf : B.t) : scan =
  let n = B.length buf in
  let edges = ref [] and executed = ref [] in
  (* db_find read-miss machine: a call_pre into db_find arms [pending]
     with its event index; the matching call_post's single i32 result is
     the iterator (-1 = miss).  Last write wins, as in the list passes. *)
  let pending = ref (-1) in
  let missed = ref None and hit = ref None in
  for i = 0 to n - 1 do
    match B.kind buf i with
    | B.K_instr ->
        if B.op_count buf i = 1 && B.op_is_i32 buf i 0 then begin
          let site = B.label buf i in
          match (Wasabi.Trace.site_of meta site).Wasabi.Trace.site_instr with
          | Wasm.Ast.Br_if _ | Wasm.Ast.If _ ->
              let c = B.op_i32 buf i 0 in
              edges := (site, if c = 0l then 0l else 1l) :: !edges
          | Wasm.Ast.Br_table _ -> edges := (site, B.op_i32 buf i 0) :: !edges
          | _ -> ()
        end
    | B.K_call_pre -> (
        match db_find with
        | None -> ()
        | Some fi -> (
            match
              (Wasabi.Trace.site_of meta (B.label buf i)).Wasabi.Trace.site_instr
            with
            | Wasm.Ast.Call f when f = fi -> pending := i
            | _ -> pending := -1))
    | B.K_call_post ->
        if db_find <> None then begin
          (if !pending >= 0 && B.op_count buf i = 1 && B.op_is_i32 buf i 0 then
             let pre = !pending in
             (* args pattern [ _code; _scope; I64 table; _id ] *)
             if B.op_count buf pre = 4 && B.op_is_i64 buf pre 2 then begin
               let table = B.op_bits buf pre 2 in
               if B.op_i32 buf i 0 = -1l then missed := Some table
               else hit := Some table
             end);
          pending := -1
        end
    | B.K_func_begin -> executed := B.label buf i :: !executed
    | B.K_func_end -> ()
  done;
  {
    sc_edges = List.rev !edges;
    sc_executed = List.rev !executed;
    sc_read_missed = !missed;
    sc_read_hit = !hit;
  }

(* Fold one scan into the session: live coverage map plus the DBG
   read-miss signal driving transaction-dependency resolution. *)
let absorb_scan (s : session) (sc : scan) =
  List.iter (fun e -> Hashtbl.replace s.branches e ()) sc.sc_edges;
  (match sc.sc_read_missed with
   | Some table -> Dbg.record_read_miss s.dbg ~action:s.current_action table
   | None -> ());
  if sc.sc_read_missed = None && sc.sc_read_hit <> None then
    Dbg.clear_read_miss s.dbg ~action:s.current_action

(* ------------------------------------------------------------------ *)
(* One fuzzing execution                                                *)
(* ------------------------------------------------------------------ *)

(* Keep the harness stationary: adversary balances are restored before
   every payload (attackers on a local chain mint at will), and the victim
   keeps a fixed working float. *)
let replenish (s : session) =
  List.iter
    (fun owner ->
      Token.set_balance s.chain ~token:Name.eosio_token ~owner
        ~symbol:Asset.Symbol.eos funding)
    [ attacker; player_one; player_two ];
  Token.set_balance s.chain ~token:fake_token ~owner:attacker
    ~symbol:Asset.Symbol.eos funding;
  Token.set_balance s.chain ~token:Name.eosio_token ~owner:s.target.tgt_account
    ~symbol:Asset.Symbol.eos 500_0000L

(** One payload's execution: the transaction result, the trace buffer
    (an alias of the session collector — read it before the next
    [run_one], which resets it), its fused scan, and the argument vector
    the victim's action function observed. *)
type execution = {
  ex_result : Chain.tx_result;
  ex_trace : B.t;
  ex_scan : scan;
  ex_observed : Abi.value list;
}

let run_one (s : session) (seed : Seed.t) (channel : Scanner.channel) :
    execution =
  let action, observed_args = payload s seed channel in
  replenish s;
  s.current_action <- seed.Seed.sd_action;
  Wasabi.Trace.reset s.collector;
  (* One exec span per payload (not per export invocation): inline
     actions and notifications re-enter the contract within the same
     transaction, and nested spans would double-count the overlap. *)
  let t_exec = Telemetry.start () in
  let result = Chain.push_action s.chain action in
  s.transactions <- s.transactions + 1;
  (* Deferred transactions run right after, as the next block. *)
  ignore (Chain.run_deferred s.chain);
  Telemetry.stop s.exec_stage t_exec;
  let buf = s.collector in
  if B.truncated buf then begin
    s.truncated_payloads <- s.truncated_payloads + 1;
    if s.first_truncated = None then
      s.first_truncated <- Some (s.transactions, seed.Seed.sd_action)
  end;
  let t_scan = Telemetry.start () in
  let sc = scan_trace ~meta:s.meta ?db_find:s.db_find_import buf in
  Telemetry.stop Telemetry.Trace_scan t_scan;
  absorb_scan s sc;
  let t_oracle = Telemetry.start () in
  Scanner.observe ~payload:action ~executed:sc.sc_executed s.scanner ~channel
    buf;
  Telemetry.stop Telemetry.Oracle t_oracle;
  { ex_result = result; ex_trace = buf; ex_scan = sc; ex_observed = observed_args }

(* Symbolic feedback: replay, flip, solve, enqueue adaptive seeds. *)
let feedback (s : session) (seed : Seed.t) (buf : B.t)
    (observed_args : Abi.value list) =
  match Abi.find_action s.target.tgt_abi seed.Seed.sd_action with
  | None -> ()
  | Some def ->
      let layout =
        (* Infer from the call_pre into the action function. *)
        let candidates = s.scanner.Scanner.action_candidates in
        let arity = List.length def.Abi.act_params + 1 in
        let n = B.length buf in
        let rec entry_args i =
          if i + 1 >= n then None
          else if
            B.kind buf i = B.K_call_pre
            && B.kind buf (i + 1) = B.K_func_begin
            && List.mem (B.label buf (i + 1)) candidates
            && B.op_count buf i >= arity
          then Some (B.ops buf i)
          else entry_args (i + 1)
        in
        match entry_args 0 with
        | Some args -> Some (Sym.Convention.infer def args)
        | None -> None
      in
      (match layout with
       | None -> ()
       | Some lay ->
           let result =
             Sym.Replay.run ~layout:lay ~meta:s.meta
               ~target_funcs:s.scanner.Scanner.action_candidates buf
           in
           s.imprecise <- s.imprecise + result.Sym.Replay.r_imprecise;
           let side = Sym.Flip.payload_sanity lay ~max_amount:funding in
           (* Skip flips whose target branch direction is already
              covered: the coverage map doubles as frontier tracking. *)
           let skip (c : Sym.Flip.candidate) =
             match c.Sym.Flip.cand_flipped_dir with
             | Some dir ->
                 Hashtbl.mem s.branches
                   (c.Sym.Flip.cand_site, if dir then 1l else 0l)
             | None -> false
           in
           let solved =
             Sym.Flip.solve ~session:s.solver ~max_solved:s.cfg.cfg_max_flips
               ~side ~skip result ~current:observed_args
           in
           List.iter
             (fun (sol : Sym.Flip.solved_seed) ->
               s.solver_sat <- s.solver_sat + 1;
               let key =
                 Name.to_string seed.Seed.sd_action ^ "/"
                 ^ Abi.serialize sol.Sym.Flip.seed_args
               in
               if not (Hashtbl.mem s.seen_seeds key) then begin
                 Hashtbl.replace s.seen_seeds key ();
                 s.adaptive_seeds <- s.adaptive_seeds + 1;
                 Seed.add s.pool
                   {
                     Seed.sd_action = seed.Seed.sd_action;
                     sd_args = sol.Sym.Flip.seed_args;
                     sd_provenance = Seed.Adaptive sol.Sym.Flip.seed_flipped_site;
                   }
               end)
             solved)

(* ------------------------------------------------------------------ *)
(* Main loop                                                            *)
(* ------------------------------------------------------------------ *)

let channels =
  [|
    Scanner.Ch_genuine; Scanner.Ch_direct; Scanner.Ch_fake_token;
    Scanner.Ch_fake_notif;
  |]

(** Fuzz one contract to completion and report.  [oracles] builds
    additional detectors from the instrumentation metadata (the §5
    extension interface). *)
let fuzz ?(cfg = default_config) ?(profile : Chain_profile.t option)
    ?(oracles : Wasabi.Trace.meta -> Scanner.custom_oracle list = fun _ -> [])
    ?(cell : int option) (target : target) : outcome =
  let s = setup ?profile ?cell cfg target in
  List.iter (Scanner.register_custom s.scanner) (oracles s.meta);
  let t0 = Unix.gettimeofday () in
  let timeline = ref [] in
  let actions = Array.of_list target.tgt_abi.Abi.abi_actions in
  let out_of_time () =
    match cfg.cfg_time_limit with
    | None -> false
    | Some limit -> Unix.gettimeofday () -. t0 >= limit
  in
  let rounds_run = ref 0 in
  (* Interesting-seed capture (the corpus feed) and verdict-round
     tracking.  Every input to either — traces, coverage, scanner state —
     is a deterministic function of the target, so both are too. *)
  let interesting = ref [] in
  let record_execution ~round (seed : Seed.t) chans =
    let before = Hashtbl.copy s.branches in
    let cov = Hashtbl.create 32 in
    (* A corpus replay re-executes a prior run's transaction for its
       coverage and table effects; it must not shift this run's block
       clock, or every later trace that reads block info diverges from
       the trajectory the corpus was recorded on. *)
    let replayed = seed.Seed.sd_provenance = Seed.Imported in
    let saved_clock =
      if replayed then
        Some
          ( s.chain.Chain.block_num, s.chain.Chain.block_prefix,
            s.chain.Chain.head_time_us )
      else None
    in
    List.iter
      (fun channel ->
        let ex = run_one s seed channel in
        List.iter (fun e -> Hashtbl.replace cov e ()) ex.ex_scan.sc_edges;
        (* Imported (corpus-replayed) seeds contribute coverage and chain
           state but no flip derivation: the producing run already paid
           the solver for every flip reachable from these traces, so
           re-deriving them here would only flood the pool with duplicate
           adaptive work. *)
        if cfg.cfg_feedback && not replayed then
          feedback s seed ex.ex_trace ex.ex_observed)
      chans;
    (match saved_clock with
     | Some (bn, bp, ht) ->
         s.chain.Chain.block_num <- bn;
         s.chain.Chain.block_prefix <- bp;
         s.chain.Chain.head_time_us <- ht
     | None -> ());
    let cover =
      List.sort compare (Hashtbl.fold (fun e () acc -> e :: acc) cov [])
    in
    let fresh =
      List.length (List.filter (fun e -> not (Hashtbl.mem before e)) cover)
    in
    if fresh > 0 then
      interesting :=
        {
          is_round = round;
          is_action = seed.Seed.sd_action;
          is_args = seed.Seed.sd_args;
          is_cover = cover;
          is_signature = Wasabi.Trace.edge_signature cover;
          is_new_edges = fresh;
        }
        :: !interesting
  in
  let verdict_round = ref 0 in
  let last_fired = ref ([], []) in
  (* Adaptive solver budget (per-target, hence deterministic): halve on a
     round that produced new Unknowns — this target's constraints are too
     hard to be worth full-price retries — and double (up to 4x the
     configured budget) on a round whose fresh-seed queue drained early,
     when there is slack to buy precision with. *)
  let min_budget = max 1 (cfg.cfg_solver_budget / 16) in
  let max_budget = cfg.cfg_solver_budget * 4 in
  let last_unknown = ref 0 in
  for round = 0 to cfg.cfg_rounds - 1 do
   if not (out_of_time ()) then begin
    incr rounds_run;
    (* Algorithm 1 line 4: select an action for transaction dependency. *)
    let def = actions.(round mod Array.length actions) in
    let phi = def.Abi.act_name in
    (* Resolve a pending dependency first: run a writer of the missed
       table before the blocked action. *)
    (match Dbg.dependency_for s.dbg phi with
     | Some writer when not (Name.equal writer phi) -> (
         (* Keep the writer's candidate queue alive with fresh random
            arguments: the blocked read's row id is unknown at table
            granularity, so resolution is by re-drawing, not by
            correlating parameters (§3.3.2, §5). *)
         (match Abi.find_action s.target.tgt_abi writer with
          | Some wdef ->
              Seed.add s.pool (Seed.random s.rng ~identities:s.identities wdef)
          | None -> ());
         match Seed.next s.pool writer with
         | Some wseed ->
             let ch =
               if Name.equal writer Name.transfer then Scanner.Ch_genuine
               else Scanner.Ch_action writer
             in
             record_execution ~round wseed [ ch ]
         | None -> ())
     | _ -> ());
    let seed =
      match Seed.next s.pool phi with
      | Some seed -> seed
      | None ->
          let seed = Seed.random s.rng ~identities:s.identities def in
          Seed.add s.pool seed;
          seed
    in
    (* Transfer seeds are delivered through every adversary channel (the
       §2.3 oracles all need their own payload transaction); other
       actions are pushed directly. *)
    let seed_channels =
      if Name.equal phi Name.transfer then Array.to_list channels
      else [ Scanner.Ch_action phi ]
    in
    let execute seed = record_execution ~round seed seed_channels in
    execute seed;
    (* Drain adaptive seeds eagerly: each was solved to open a specific
       branch and may unlock further flips this same round.  Imported
       (corpus-replayed) seeds are exempt from the cap: they cost no
       solver work, and counting them would starve this round's adaptive
       flips behind a large preload. *)
    let drained = ref 0 in
    let continue_ = ref true in
    while !continue_ && !drained < 16 do
      match Seed.take_fresh s.pool phi with
      | Some fresh ->
          (if fresh.Seed.sd_provenance <> Seed.Imported then incr drained);
          execute fresh
      | None -> continue_ := false
    done;
    (* Verdict-round bookkeeping: the reported round is the last one that
       changed the fired set, i.e. when the final verdicts were complete. *)
    let fired_now =
      ( List.filter snd (Scanner.report s.scanner),
        List.filter snd (Scanner.custom_report s.scanner) )
    in
    if fired_now <> !last_fired then begin
      last_fired := fired_now;
      verdict_round := round + 1
    end;
    (* Adaptive budget retune, gated on feedback (a blind run never
       consults the solver, so there is nothing to trade). *)
    if cfg.cfg_feedback then begin
      let st = Solver.Session.stats s.solver in
      let b = Solver.Session.conflict_budget s.solver in
      if st.Solver.st_unknown > !last_unknown then
        Solver.Session.set_conflict_budget s.solver (max min_budget (b / 2))
      else if !drained < 16 && b * 2 <= max_budget then
        Solver.Session.set_conflict_budget s.solver (b * 2);
      last_unknown := st.Solver.st_unknown
    end;
    timeline :=
      (round, Unix.gettimeofday () -. t0, Hashtbl.length s.branches) :: !timeline
   end
  done;
  let flags = Scanner.report s.scanner in
  {
    out_flags = flags;
    out_custom = Scanner.custom_report s.scanner;
    out_exploits =
      List.filter_map
        (fun (f, fired) ->
          if fired then
            Option.map (fun e -> (f, e)) (Scanner.evidence_for s.scanner f)
          else None)
        flags;
    out_branches = Hashtbl.length s.branches;
    out_timeline = List.rev !timeline;
    out_rounds = !rounds_run;
    out_seeds_total = Seed.total s.pool;
    out_adaptive_seeds = s.adaptive_seeds;
    out_transactions = s.transactions;
    out_solver_sat = s.solver_sat;
    out_imprecise = s.imprecise;
    out_solver = Solver.Session.stats s.solver;
    out_interesting = List.rev !interesting;
    out_verdict_round = !verdict_round;
    out_final_budget = Solver.Session.conflict_budget s.solver;
    out_truncated = s.truncated_payloads;
    out_first_truncated = s.first_truncated;
  }

let flagged (o : outcome) (f : Scanner.flag) : bool =
  match List.assoc_opt f o.out_flags with Some b -> b | None -> false

let any_flagged (o : outcome) = List.exists snd o.out_flags

(* ------------------------------------------------------------------ *)
(* Partitionable round space                                            *)
(* ------------------------------------------------------------------ *)

(** Mergeable work units over a target's round budget.

    The budget is first cut into a {e fixed} number of cells,
    [granularity ~rounds] of them, each an independent full engine run
    over its balanced share of the rounds with its own
    [Rand.mix3]-derived stream.  A {e slice} — the schedulable unit — is
    a contiguous range of cells, and a fragment is the ordered
    associative fold of its cells' outcomes.  Because the cell partition
    never depends on the slice count K, and every merge operation below
    is associative under ordered contiguous grouping (per-flag OR,
    first-wins exploit selection, sorted edge union, counter addition,
    signature-deduplicated concatenation, min/max/first-[Some]), merging
    the K fragments of {e any} K yields one identical outcome —
    byte-identical journal lines, corpus additions and reports for
    K = 1, 2, 4, ... at the same total budget. *)
module Slice = struct
  (* Eight cells keeps every cell a meaningful engine run (>= rounds/8
     rounds of feedback) while still letting a campaign split one
     dominant target across a typical worker fleet. *)
  let max_cells = 8

  let granularity ~rounds =
    if rounds < 1 then invalid_arg "Engine.Slice.granularity: rounds < 1";
    min rounds max_cells

  (* Balanced partition of [total] items into [parts]: part [i] holds
     [share] items starting at offset [base].  Remainder cells go to the
     lowest indices, so the layout is a pure function of (total, parts). *)
  let share total parts i =
    (total / parts) + if i < total mod parts then 1 else 0

  let base total parts i = (i * (total / parts)) + min i (total mod parts)

  type fragment = {
    fg_slice : int;  (** 0-based slice index *)
    fg_count : int;  (** K, the slice count this fragment was cut under *)
    fg_flags : (Scanner.flag * bool) list;  (** canonical [all_flags] order *)
    fg_custom : (string * bool) list;
    fg_exploits : (Scanner.flag * Scanner.evidence) list;
    fg_edges : (int * int32) list;  (** sorted distinct (site, dir) edges *)
    fg_rounds : int;
    fg_seeds_total : int;
    fg_adaptive_seeds : int;
    fg_transactions : int;
    fg_solver_sat : int;
    fg_imprecise : int;
    fg_solver : Solver.stats;
    fg_final_budget : int;  (** min over the fragment's cells *)
    fg_interesting : interesting list;
        (** cell order, rounds globalised, distinct signatures *)
    fg_verdict_round : int;  (** globalised; 0 = nothing ever fired *)
    fg_truncated : int;
    fg_first_truncated : (int * Name.t) option;
    fg_timeline : (int * float * int) list;  (** rounds globalised *)
    fg_elapsed : float;  (** summed wall seconds the fragment cost *)
  }

  let canonical_flags value =
    List.map (fun f -> (f, value f)) Scanner.all_flags

  let flag_value flags f =
    match List.assoc_opt f flags with Some b -> b | None -> false

  (* Keep first occurrence per signature, preserving order.  Signatures
     are the corpus identity of a cover set, so this matches the
     (target, signature) key [Corpus.add] dedupes on — which is what
     makes the merged run's corpus additions K-invariant. *)
  let dedup_interesting (xs : interesting list) : interesting list =
    let seen = Hashtbl.create 32 in
    List.filter
      (fun (i : interesting) ->
        if Hashtbl.mem seen i.is_signature then false
        else begin
          Hashtbl.replace seen i.is_signature ();
          true
        end)
      xs

  let fragment_of_outcome ~slice ~count ~round_base ~elapsed (o : outcome) :
      fragment =
    let globalise (i : interesting) =
      { i with is_round = i.is_round + round_base }
    in
    {
      fg_slice = slice;
      fg_count = count;
      fg_flags = canonical_flags (flag_value o.out_flags);
      fg_custom = o.out_custom;
      fg_exploits =
        List.filter_map
          (fun f ->
            Option.map (fun e -> (f, e)) (List.assoc_opt f o.out_exploits))
          Scanner.all_flags;
      (* The covers of the interesting seeds union to the run's final
         branch set (every edge was new exactly once, under the seed
         that introduced it), so the fragment needs no separate edge
         dump from the engine. *)
      fg_edges =
        List.sort_uniq compare
          (List.concat_map
             (fun (i : interesting) -> i.is_cover)
             o.out_interesting);
      fg_rounds = o.out_rounds;
      fg_seeds_total = o.out_seeds_total;
      fg_adaptive_seeds = o.out_adaptive_seeds;
      fg_transactions = o.out_transactions;
      fg_solver_sat = o.out_solver_sat;
      fg_imprecise = o.out_imprecise;
      fg_solver = o.out_solver;
      fg_final_budget = o.out_final_budget;
      fg_interesting = List.map globalise o.out_interesting;
      fg_verdict_round =
        (if o.out_verdict_round = 0 then 0
         else o.out_verdict_round + round_base);
      fg_truncated = o.out_truncated;
      fg_first_truncated = o.out_first_truncated;
      fg_timeline =
        List.map (fun (r, t, b) -> (r + round_base, t, b)) o.out_timeline;
      fg_elapsed = elapsed;
    }

  (* Associative merge of two adjacent fragments ([a] covers the cells
     just before [b]'s).  The caller owns fg_slice/fg_count bookkeeping. *)
  let merge_adjacent (a : fragment) (b : fragment) : fragment =
    {
      fg_slice = a.fg_slice;
      fg_count = a.fg_count;
      fg_flags =
        canonical_flags (fun f ->
            flag_value a.fg_flags f || flag_value b.fg_flags f);
      fg_custom =
        (let extra =
           List.filter
             (fun (n, _) -> not (List.mem_assoc n a.fg_custom))
             b.fg_custom
         in
         List.map
           (fun (n, v) ->
             (n, v || flag_value b.fg_custom n))
           a.fg_custom
         @ extra);
      (* First fragment (in cell order) to fire a flag supplies its
         exploit payload, mirroring the scanner's keep-first evidence. *)
      fg_exploits =
        List.filter_map
          (fun f ->
            match List.assoc_opt f a.fg_exploits with
            | Some e -> Some (f, e)
            | None ->
                Option.map (fun e -> (f, e)) (List.assoc_opt f b.fg_exploits))
          Scanner.all_flags;
      fg_edges = List.sort_uniq compare (a.fg_edges @ b.fg_edges);
      fg_rounds = a.fg_rounds + b.fg_rounds;
      fg_seeds_total = a.fg_seeds_total + b.fg_seeds_total;
      fg_adaptive_seeds = a.fg_adaptive_seeds + b.fg_adaptive_seeds;
      fg_transactions = a.fg_transactions + b.fg_transactions;
      fg_solver_sat = a.fg_solver_sat + b.fg_solver_sat;
      fg_imprecise = a.fg_imprecise + b.fg_imprecise;
      fg_solver = Solver.stats_add a.fg_solver b.fg_solver;
      fg_final_budget = min a.fg_final_budget b.fg_final_budget;
      fg_interesting = dedup_interesting (a.fg_interesting @ b.fg_interesting);
      fg_verdict_round = max a.fg_verdict_round b.fg_verdict_round;
      fg_truncated = a.fg_truncated + b.fg_truncated;
      fg_first_truncated =
        (match a.fg_first_truncated with
        | Some _ as ft -> ft
        | None -> b.fg_first_truncated);
      fg_timeline = a.fg_timeline @ b.fg_timeline;
      fg_elapsed = a.fg_elapsed +. b.fg_elapsed;
    }

  let run ?profile ?oracles ~cfg ~slice ~count (target : target) : fragment =
    let g = granularity ~rounds:cfg.cfg_rounds in
    if count < 1 || count > g then
      invalid_arg
        (Printf.sprintf
           "Engine.Slice.run: slice count %d outside 1..%d (granularity of a \
            %d-round budget)"
           count g cfg.cfg_rounds);
    if slice < 0 || slice >= count then
      invalid_arg
        (Printf.sprintf "Engine.Slice.run: slice %d outside 0..%d" slice
           (count - 1));
    let cell_lo = base g count slice and ncells = share g count slice in
    let frags =
      List.init ncells (fun j ->
          let cell = cell_lo + j in
          let ccfg = { cfg with cfg_rounds = share cfg.cfg_rounds g cell } in
          let t0 = Unix.gettimeofday () in
          let o = fuzz ~cfg:ccfg ?profile ?oracles ~cell target in
          fragment_of_outcome ~slice ~count
            ~round_base:(base cfg.cfg_rounds g cell)
            ~elapsed:(Unix.gettimeofday () -. t0)
            o)
    in
    match frags with
    | [] -> assert false (* share g count slice >= 1 when count <= g *)
    | f :: rest -> List.fold_left merge_adjacent f rest

  let merge (frags : fragment list) : fragment =
    match List.sort (fun a b -> compare a.fg_slice b.fg_slice) frags with
    | [] -> invalid_arg "Engine.Slice.merge: no fragments"
    | first :: _ as sorted ->
        let count = first.fg_count in
        if List.length sorted <> count then
          invalid_arg
            (Printf.sprintf
               "Engine.Slice.merge: %d fragment(s) of a %d-slice set"
               (List.length sorted) count);
        List.iteri
          (fun i (f : fragment) ->
            if f.fg_count <> count then
              invalid_arg
                (Printf.sprintf
                   "Engine.Slice.merge: fragment %d/%d mixed with a %d-slice \
                    set"
                   f.fg_slice f.fg_count count);
            if f.fg_slice <> i then
              invalid_arg
                (Printf.sprintf
                   "Engine.Slice.merge: slice set is not exactly 0..%d \
                    (missing or duplicate slice %d)"
                   (count - 1) i))
          sorted;
        let m =
          match sorted with
          | f :: rest -> List.fold_left merge_adjacent f rest
          | [] -> assert false
        in
        { m with fg_slice = 0; fg_count = 1 }

  let outcome_of_fragment (f : fragment) : outcome =
    {
      out_flags = f.fg_flags;
      out_custom = f.fg_custom;
      out_exploits = f.fg_exploits;
      out_branches = List.length f.fg_edges;
      out_timeline = f.fg_timeline;
      out_rounds = f.fg_rounds;
      out_seeds_total = f.fg_seeds_total;
      out_adaptive_seeds = f.fg_adaptive_seeds;
      out_transactions = f.fg_transactions;
      out_solver_sat = f.fg_solver_sat;
      out_imprecise = f.fg_imprecise;
      out_solver = f.fg_solver;
      out_interesting = f.fg_interesting;
      out_verdict_round = f.fg_verdict_round;
      out_final_budget = f.fg_final_budget;
      out_truncated = f.fg_truncated;
      out_first_truncated = f.fg_first_truncated;
    }
end
