lib/wasm/types.ml: Format List Printf String
