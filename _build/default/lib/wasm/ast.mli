(** Abstract syntax of Wasm MVP modules.  Instructions are structured
    (nested [Block]/[Loop]/[If]); the binary encoder and decoder translate
    between this tree and the flat bytecode. *)

type int_unop = Clz | Ctz | Popcnt

type int_binop =
  | Add | Sub | Mul
  | Div_s | Div_u | Rem_s | Rem_u
  | And | Or | Xor
  | Shl | Shr_s | Shr_u | Rotl | Rotr

type int_relop = Eq | Ne | Lt_s | Lt_u | Gt_s | Gt_u | Le_s | Le_u | Ge_s | Ge_u

type float_unop = Fabs | Fneg | Fceil | Ffloor | Ftrunc | Fnearest | Fsqrt
type float_binop = Fadd | Fsub | Fmul | Fdiv | Fmin | Fmax | Fcopysign
type float_relop = Feq | Fne | Flt | Fgt | Fle | Fge

type cvtop =
  | I32_wrap_i64
  | I64_extend_i32_s | I64_extend_i32_u
  | I32_trunc_f32_s | I32_trunc_f32_u | I32_trunc_f64_s | I32_trunc_f64_u
  | I64_trunc_f32_s | I64_trunc_f32_u | I64_trunc_f64_s | I64_trunc_f64_u
  | F32_convert_i32_s | F32_convert_i32_u | F32_convert_i64_s | F32_convert_i64_u
  | F64_convert_i32_s | F64_convert_i32_u | F64_convert_i64_s | F64_convert_i64_u
  | F32_demote_f64 | F64_promote_f32
  | I32_reinterpret_f32 | I64_reinterpret_f64
  | F32_reinterpret_i32 | F64_reinterpret_i64

type pack_size = Pack8 | Pack16 | Pack32
type extension = SX | ZX

type loadop = {
  l_ty : Types.num_type;
  l_pack : (pack_size * extension) option;
  l_align : int;
  l_offset : int32;
}

type storeop = {
  s_ty : Types.num_type;
  s_pack : pack_size option;
  s_align : int;
  s_offset : int32;
}

type block_type = Types.value_type option
(** MVP blocks have at most one result. *)

type instr =
  | Unreachable
  | Nop
  | Block of block_type * instr list
  | Loop of block_type * instr list
  | If of block_type * instr list * instr list
  | Br of int
  | Br_if of int
  | Br_table of int list * int
  | Return
  | Call of int
  | Call_indirect of int  (** type index *)
  | Drop
  | Select
  | Local_get of int
  | Local_set of int
  | Local_tee of int
  | Global_get of int
  | Global_set of int
  | Load of loadop
  | Store of storeop
  | Memory_size
  | Memory_grow
  | Const of Values.value
  | Eqz of Types.num_type
  | Int_compare of Types.num_type * int_relop
  | Float_compare of Types.num_type * float_relop
  | Int_unary of Types.num_type * int_unop
  | Int_binary of Types.num_type * int_binop
  | Float_unary of Types.num_type * float_unop
  | Float_binary of Types.num_type * float_binop
  | Convert of cvtop

type func = {
  ftype : int;  (** index into the type section *)
  locals : Types.value_type list;
  body : instr list;
  fname : string option;  (** debug name, preserved by the codec *)
}

type global = {
  gtype : Types.global_type;
  ginit : instr list;
}

type export_desc =
  | Func_export of int
  | Table_export of int
  | Memory_export of int
  | Global_export of int

type export = { ename : string; edesc : export_desc }

type import_desc =
  | Func_import of int  (** type index *)
  | Table_import of Types.table_type
  | Memory_import of Types.memory_type
  | Global_import of Types.global_type

type import = {
  imp_module : string;
  imp_name : string;
  idesc : import_desc;
}

type data_segment = {
  d_offset : instr list;  (** constant expression *)
  d_init : string;
}

type elem_segment = {
  e_offset : instr list;  (** constant expression *)
  e_init : int list;  (** function indices *)
}

type module_ = {
  types : Types.func_type array;
  imports : import list;
  funcs : func array;  (** local functions; index space offset by imports *)
  tables : Types.table_type list;
  memories : Types.memory_type list;
  globals : global array;
  exports : export list;
  start : int option;
  elems : elem_segment list;
  datas : data_segment list;
}

val empty_module : module_

val num_func_imports : module_ -> int
(** Imported functions precede local functions in the index space. *)

val func_imports : module_ -> import list

val func_type_at : module_ -> int -> Types.func_type
(** Type of the function at an absolute index. *)

val func_name_at : module_ -> int -> string option
(** Debug name of the function at an absolute index (imports render as
    "module.name"). *)

val exported_func : module_ -> string -> int option

(** {1 Instruction metadata} *)

val string_of_int_unop : int_unop -> string
val string_of_int_binop : int_binop -> string
val string_of_int_relop : int_relop -> string
val string_of_float_unop : float_unop -> string
val string_of_float_binop : float_binop -> string
val string_of_float_relop : float_relop -> string
val string_of_cvtop : cvtop -> string
val string_of_loadop : loadop -> string
val string_of_storeop : storeop -> string

val mnemonic : instr -> string
(** Human-readable mnemonic without immediates. *)

val operand_arity : instr -> int
(** Stack operands consumed (the tracer duplicates this many values). *)

val iter_instrs : (instr -> unit) -> instr list -> unit
(** Visit every instruction, including nested blocks. *)

val body_size : instr list -> int
