lib/support/metrics.mli:
