(** Parallel fuzzing-campaign orchestrator: a shared work queue drained by
    N domains, each running the engine on an independent target; completed
    targets are journaled (fsync'd) before they count as done; the merged
    report is canonicalised by target name so its verdict section is
    identical for any worker count. *)

module Core = Wasai_core
module Solver = Wasai_smt.Solver
module Metrics = Wasai_support.Metrics

type target_spec = {
  sp_name : string;
  sp_load : unit -> Core.Engine.target;
}

type config = {
  cc_jobs : int;
  cc_engine : Core.Engine.config;
  cc_journal : string option;
  cc_resume : bool;
  cc_max_targets : int option;
  cc_progress : (Journal.entry -> unit) option;
}

let default_config =
  {
    cc_jobs = 1;
    cc_engine = Core.Engine.default_config;
    cc_journal = None;
    cc_resume = false;
    cc_max_targets = None;
    cc_progress = None;
  }

type report = {
  cr_results : Journal.entry list;
  cr_requested : int;
  cr_skipped : int;
  cr_jobs : int;
  cr_wall : float;
}

let take n xs =
  let rec go n = function
    | x :: rest when n > 0 -> x :: go (n - 1) rest
    | _ -> []
  in
  go n xs

let run (cfg : config) (targets : target_spec list) : report =
  let seen = Hashtbl.create 64 in
  List.iter
    (fun t ->
      if Hashtbl.mem seen t.sp_name then
        invalid_arg
          (Printf.sprintf
             "Campaign.run: duplicate target name %S (the journal and the \
              report are keyed by name)"
             t.sp_name);
      Hashtbl.replace seen t.sp_name ())
    targets;
  (* Resume: a target is done iff its line reached the journal. *)
  let prior =
    match cfg.cc_journal with
    | Some path when cfg.cc_resume && Sys.file_exists path -> Journal.load path
    | _ -> []
  in
  let done_ = Hashtbl.create 64 in
  List.iter (fun (e : Journal.entry) -> Hashtbl.replace done_ e.Journal.je_name e) prior;
  (* Journal entries for targets outside this run's input set are ignored,
     so a shared journal never leaks foreign results into the report.
     Duplicate lines for one name (a journal appended to by a non-resume
     rerun) collapse to the last entry, matching [done_]. *)
  let prior_results =
    Hashtbl.fold
      (fun name (e : Journal.entry) acc ->
        if Hashtbl.mem seen name then e :: acc else acc)
      done_ []
  in
  let remaining =
    List.filter (fun t -> not (Hashtbl.mem done_ t.sp_name)) targets
  in
  let remaining =
    match cfg.cc_max_targets with
    | Some n -> take (max 0 n) remaining
    | None -> remaining
  in
  let queue = Work_queue.create () in
  List.iter (Work_queue.push queue) remaining;
  Work_queue.close queue;
  let writer = Option.map Journal.open_writer cfg.cc_journal in
  let lock = Mutex.create () in
  let results = ref prior_results in
  let failures = ref [] in
  let t0 = Unix.gettimeofday () in
  let worker () =
    let rec loop () =
      match Work_queue.take queue with
      | None -> ()
      | Some spec ->
          (try
             let target = spec.sp_load () in
             let s0 = Unix.gettimeofday () in
             let o = Core.Engine.fuzz ~cfg:cfg.cc_engine target in
             let entry =
               Journal.of_outcome ~name:spec.sp_name
                 ~elapsed:(Unix.gettimeofday () -. s0)
                 o
             in
             Mutex.protect lock (fun () ->
                 (* Journal first: the entry must be durable before the
                    target is reported as done. *)
                 Option.iter (fun w -> Journal.append w entry) writer;
                 results := entry :: !results;
                 Option.iter (fun f -> f entry) cfg.cc_progress)
           with exn ->
             let msg = Printexc.to_string exn in
             Mutex.protect lock (fun () ->
                 failures := (spec.sp_name, msg) :: !failures));
          loop ()
    in
    loop ()
  in
  let jobs = max 1 cfg.cc_jobs in
  (* The calling domain is worker 0; spawn the other jobs-1. *)
  let domains = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join domains;
  Option.iter Journal.close_writer writer;
  (match List.rev !failures with
   | [] -> ()
   | (name, msg) :: rest ->
       failwith
         (Printf.sprintf "campaign: target %S failed: %s%s" name msg
            (match rest with
             | [] -> ""
             | _ -> Printf.sprintf " (and %d more failures)" (List.length rest))));
  {
    cr_results =
      List.sort
        (fun (a : Journal.entry) b -> compare a.Journal.je_name b.Journal.je_name)
        !results;
    cr_requested = List.length targets;
    cr_skipped = List.length prior_results;
    cr_jobs = jobs;
    cr_wall = Unix.gettimeofday () -. t0;
  }

(* ------------------------------------------------------------------ *)
(* Aggregation                                                         *)
(* ------------------------------------------------------------------ *)

let flag_counts (r : report) =
  List.map
    (fun f ->
      ( f,
        List.length
          (List.filter
             (fun (e : Journal.entry) ->
               List.assoc_opt f e.Journal.je_flags = Some true)
             r.cr_results) ))
    Core.Scanner.all_flags

let vulnerable_count (r : report) =
  List.length
    (List.filter
       (fun (e : Journal.entry) -> List.exists snd e.Journal.je_flags)
       r.cr_results)

let total_branches (r : report) =
  List.fold_left (fun acc (e : Journal.entry) -> acc + e.Journal.je_branches) 0
    r.cr_results

(* Fleet-wide solver/cache counters: a plain sum over per-target stats.
   Each target's counters are deterministic (sessions are per-target and
   never shared across domains), so the sum is too. *)
let solver_totals (r : report) =
  List.fold_left
    (fun acc (e : Journal.entry) -> Solver.stats_add acc e.Journal.je_solver)
    Solver.stats_zero r.cr_results

let latency_histogram (r : report) =
  let h = Metrics.Histogram.create () in
  List.iter
    (fun (e : Journal.entry) -> Metrics.Histogram.add h e.Journal.je_elapsed)
    r.cr_results;
  h

let verdict_line (e : Journal.entry) =
  let fired = List.filter_map (fun (f, b) -> if b then Some f else None) e.Journal.je_flags in
  (* Solver counters are per-target deterministic (private session per
     engine run), so they are safe inside the canonical verdict section:
     the line stays byte-identical for any worker count. *)
  let st = e.Journal.je_solver in
  Printf.sprintf
    "%-13s %-40s branches=%d rounds=%d seeds=%d adaptive=%d tx=%d sat=%d \
     imprecise=%d quick=%d blast=%d unk=%d hits=%d misses=%d"
    e.Journal.je_name
    (match fired with
     | [] -> "ok"
     | fs ->
         "VULNERABLE ["
         ^ String.concat "; " (List.map Core.Scanner.string_of_flag fs)
         ^ "]")
    e.Journal.je_branches e.Journal.je_rounds e.Journal.je_seeds_total
    e.Journal.je_adaptive_seeds e.Journal.je_transactions
    e.Journal.je_solver_sat e.Journal.je_imprecise st.Solver.st_quick
    st.Solver.st_blasted st.Solver.st_unknown st.Solver.st_cache_hits
    st.Solver.st_cache_misses

let verdicts_text (r : report) =
  String.concat "" (List.map (fun e -> verdict_line e ^ "\n") r.cr_results)

let to_text (r : report) =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf
       "campaign: %d targets (%d fuzzed, %d resumed from journal), %d worker \
        domain%s, %.2fs wall\n"
       r.cr_requested
       (List.length r.cr_results - r.cr_skipped)
       r.cr_skipped r.cr_jobs
       (if r.cr_jobs = 1 then "" else "s")
       r.cr_wall);
  Buffer.add_string b
    (Printf.sprintf "vulnerable: %d/%d contracts, %d distinct branches explored\n"
       (vulnerable_count r)
       (List.length r.cr_results)
       (total_branches r));
  List.iter
    (fun (f, n) ->
      Buffer.add_string b
        (Printf.sprintf "  %-14s %d\n" (Core.Scanner.string_of_flag f) n))
    (flag_counts r);
  let st = solver_totals r in
  Buffer.add_string b
    (Printf.sprintf "solver: quick=%d blasted=%d unknown=%d cache=%s\n"
       st.Solver.st_quick st.Solver.st_blasted st.Solver.st_unknown
       (Metrics.rate_string ~hits:st.Solver.st_cache_hits
          ~total:(st.Solver.st_cache_hits + st.Solver.st_cache_misses)));
  Buffer.add_string b (Metrics.Histogram.to_string (latency_histogram r));
  Buffer.add_char b '\n';
  Buffer.add_string b (verdicts_text r);
  Buffer.contents b
