lib/baselines/eosfuzzer.mli: Wasai_core
