examples/obfuscation_robustness.ml: List Name Printf String Wasai_baselines Wasai_benchgen Wasai_core Wasai_eosio Wasai_wasm
