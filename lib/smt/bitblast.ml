(** Bit-blasting: translate bitvector expressions to CNF (Tseitin
    encoding) over the {!Sat} solver.

    Every expression becomes an array of SAT literals, least-significant
    bit first.  Arithmetic uses ripple-carry adders, shift-add
    multiplication, restoring division and barrel shifters — standard
    circuits, adequate for the ≤64-bit constraints the fuzzer emits. *)

type ctx = {
  sat : Sat.t;
  var_bits : (int, int array) Hashtbl.t;  (** expr var id → literals *)
  cache : (int, int array) Hashtbl.t;  (** expr tag → literals *)
  true_lit : int;
}

let create () =
  let sat = Sat.create () in
  let tv = Sat.new_var sat in
  let true_lit = Sat.lit_of_var tv ~positive:true in
  ignore (Sat.add_clause sat [ true_lit ]);
  { sat; var_bits = Hashtbl.create 64; cache = Hashtbl.create 256; true_lit }

let false_lit ctx = Sat.neg ctx.true_lit

let const_lit ctx b = if b then ctx.true_lit else false_lit ctx

let fresh ctx = Sat.lit_of_var (Sat.new_var ctx.sat) ~positive:true

let add ctx lits = ignore (Sat.add_clause ctx.sat lits)

(* ---- gates ---------------------------------------------------------- *)

let g_and ctx a b =
  if a = false_lit ctx || b = false_lit ctx then false_lit ctx
  else if a = ctx.true_lit then b
  else if b = ctx.true_lit then a
  else if a = b then a
  else if a = Sat.neg b then false_lit ctx
  else begin
    let v = fresh ctx in
    add ctx [ Sat.neg v; a ];
    add ctx [ Sat.neg v; b ];
    add ctx [ v; Sat.neg a; Sat.neg b ];
    v
  end

let g_or ctx a b = Sat.neg (g_and ctx (Sat.neg a) (Sat.neg b))

let g_xor ctx a b =
  if a = false_lit ctx then b
  else if b = false_lit ctx then a
  else if a = ctx.true_lit then Sat.neg b
  else if b = ctx.true_lit then Sat.neg a
  else if a = b then false_lit ctx
  else if a = Sat.neg b then ctx.true_lit
  else begin
    let v = fresh ctx in
    add ctx [ Sat.neg v; a; b ];
    add ctx [ Sat.neg v; Sat.neg a; Sat.neg b ];
    add ctx [ v; a; Sat.neg b ];
    add ctx [ v; Sat.neg a; b ];
    v
  end

(* mux: c ? a : b *)
let g_mux ctx c a b =
  if c = ctx.true_lit then a
  else if c = false_lit ctx then b
  else if a = b then a
  else begin
    let v = fresh ctx in
    add ctx [ Sat.neg c; Sat.neg a; v ];
    add ctx [ Sat.neg c; a; Sat.neg v ];
    add ctx [ c; Sat.neg b; v ];
    add ctx [ c; b; Sat.neg v ];
    v
  end

let _g_maj ctx a b c =
  g_or ctx (g_and ctx a b) (g_or ctx (g_and ctx a c) (g_and ctx b c))

(* ---- word-level circuits -------------------------------------------- *)

let adder ctx ?(carry_in : int option) (a : int array) (b : int array) :
    int array =
  let w = Array.length a in
  let out = Array.make w 0 in
  let carry = ref (match carry_in with Some c -> c | None -> false_lit ctx) in
  for i = 0 to w - 1 do
    let axb = g_xor ctx a.(i) b.(i) in
    out.(i) <- g_xor ctx axb !carry;
    carry := g_or ctx (g_and ctx a.(i) b.(i)) (g_and ctx axb !carry)
  done;
  out

let negate_bits ctx (a : int array) : int array =
  let w = Array.length a in
  let inv = Array.map Sat.neg a in
  adder ctx ~carry_in:ctx.true_lit inv (Array.make w (false_lit ctx))

let subtract ctx a b = adder ctx ~carry_in:ctx.true_lit a (Array.map Sat.neg b)

let mul ctx (a : int array) (b : int array) : int array =
  let w = Array.length a in
  let acc = ref (Array.make w (false_lit ctx)) in
  for i = 0 to w - 1 do
    (* Partial product: (a << i) masked by b_i. *)
    let pp =
      Array.init w (fun j -> if j < i then false_lit ctx else g_and ctx a.(j - i) b.(i))
    in
    acc := adder ctx !acc pp
  done;
  !acc

(* a <u b as a single literal (lexicographic from LSB). *)
let ult ctx (a : int array) (b : int array) : int =
  let w = Array.length a in
  let lt = ref (false_lit ctx) in
  for i = 0 to w - 1 do
    let eqi = Sat.neg (g_xor ctx a.(i) b.(i)) in
    lt := g_or ctx (g_and ctx (Sat.neg a.(i)) b.(i)) (g_and ctx eqi !lt)
  done;
  !lt

let eq_bits ctx (a : int array) (b : int array) : int =
  let w = Array.length a in
  let acc = ref ctx.true_lit in
  for i = 0 to w - 1 do
    acc := g_and ctx !acc (Sat.neg (g_xor ctx a.(i) b.(i)))
  done;
  !acc

let is_zero ctx (a : int array) : int =
  let acc = ref ctx.true_lit in
  Array.iter (fun l -> acc := g_and ctx !acc (Sat.neg l)) a;
  !acc

let mux_bits ctx c (a : int array) (b : int array) : int array =
  Array.init (Array.length a) (fun i -> g_mux ctx c a.(i) b.(i))

(* Restoring division: returns (quotient, remainder); division by zero
   yields q = all-ones, r = a, matching Expr.eval_binop. *)
let udivrem ctx (a : int array) (b : int array) : int array * int array =
  let w = Array.length a in
  let q = Array.make w (false_lit ctx) in
  let r = ref (Array.make w (false_lit ctx)) in
  for i = w - 1 downto 0 do
    (* r = (r << 1) | a_i *)
    let shifted = Array.init w (fun j -> if j = 0 then a.(i) else !r.(j - 1)) in
    let geq = Sat.neg (ult ctx shifted b) in
    let diff = subtract ctx shifted b in
    q.(i) <- geq;
    r := mux_bits ctx geq diff shifted
  done;
  let bz = is_zero ctx b in
  let all_ones = Array.make w ctx.true_lit in
  (mux_bits ctx bz all_ones q, mux_bits ctx bz a !r)

(* Power-of-two barrel shifter; Wasm masks the amount to log2 w bits. *)
let log2 w = match w with 1 -> 0 | 2 -> 1 | 4 -> 2 | 8 -> 3 | 16 -> 4 | 32 -> 5 | 64 -> 6 | _ -> invalid_arg "Bitblast: shift on non-power-of-two width"

let shifter ctx ~(kind : [ `Shl | `Lshr | `Ashr | `Rotl | `Rotr ])
    (a : int array) (amt : int array) : int array =
  let w = Array.length a in
  let stages = log2 w in
  let fill_bit = match kind with `Ashr -> a.(w - 1) | _ -> false_lit ctx in
  let cur = ref (Array.copy a) in
  for s = 0 to stages - 1 do
    let k = 1 lsl s in
    let c = !cur in
    let shifted =
      Array.init w (fun j ->
          match kind with
          | `Shl -> if j >= k then c.(j - k) else false_lit ctx
          | `Lshr | `Ashr -> if j + k < w then c.(j + k) else fill_bit
          | `Rotl -> c.((j - k + w) mod w)
          | `Rotr -> c.((j + k) mod w))
    in
    cur := mux_bits ctx amt.(s) shifted c
  done;
  !cur

let popcount ctx (a : int array) : int array =
  let w = Array.length a in
  let acc = ref (Array.make w (false_lit ctx)) in
  Array.iter
    (fun bit ->
      let one = Array.init w (fun j -> if j = 0 then bit else false_lit ctx) in
      acc := adder ctx !acc one)
    a;
  !acc

let count_zeros ctx ~(from_msb : bool) (a : int array) : int array =
  let w = Array.length a in
  let const_arr v =
    Array.init w (fun j ->
        const_lit ctx (Int64.logand (Int64.shift_right_logical (Int64.of_int v) j) 1L = 1L))
  in
  let res = ref (const_arr w) in
  let order = if from_msb then List.init w (fun i -> i) else List.init w (fun i -> w - 1 - i) in
  (* Fold so the bit with highest priority is applied last. *)
  List.iter
    (fun i ->
      let v = if from_msb then w - 1 - i else i in
      res := mux_bits ctx a.(i) (const_arr v) !res)
    order;
  !res

(* ---- expression translation ----------------------------------------- *)

let rec blast (ctx : ctx) (e : Expr.t) : int array =
  match Hashtbl.find_opt ctx.cache e.Expr.tag with
  | Some bits -> bits
  | None ->
      let bits = blast_uncached ctx e in
      Hashtbl.replace ctx.cache e.Expr.tag bits;
      bits

and blast_uncached ctx (e : Expr.t) : int array =
  let open Expr in
  match e.node with
  | Const (w, v) ->
      Array.init w (fun i ->
          const_lit ctx (Int64.logand (Int64.shift_right_logical v i) 1L = 1L))
  | Var v -> (
      match Hashtbl.find_opt ctx.var_bits v.vid with
      | Some bits -> bits
      | None ->
          let bits = Array.init v.vwidth (fun _ -> fresh ctx) in
          Hashtbl.replace ctx.var_bits v.vid bits;
          bits)
  | Unop (Not, a) -> Array.map Sat.neg (blast ctx a)
  | Unop (Neg, a) -> negate_bits ctx (blast ctx a)
  | Unop (Popcnt, a) -> popcount ctx (blast ctx a)
  | Unop (Clz, a) -> count_zeros ctx ~from_msb:true (blast ctx a)
  | Unop (Ctz, a) -> count_zeros ctx ~from_msb:false (blast ctx a)
  | Binop (op, a, b) -> blast_binop ctx op (blast ctx a) (blast ctx b)
  | Cmp (op, a, b) ->
      let ba = blast ctx a and bb = blast ctx b in
      [| blast_cmp ctx op ba bb |]
  | Ite (c, a, b) ->
      let bc = blast ctx c in
      mux_bits ctx bc.(0) (blast ctx a) (blast ctx b)
  | Extract (hi, lo, a) ->
      let ba = blast ctx a in
      Array.sub ba lo (hi - lo + 1)
  | Concat (hi, lo) ->
      let bl = blast ctx lo and bh = blast ctx hi in
      Array.append bl bh
  | Zext (w, a) ->
      let ba = blast ctx a in
      Array.init w (fun i -> if i < Array.length ba then ba.(i) else false_lit ctx)
  | Sext (w, a) ->
      let ba = blast ctx a in
      let msb = ba.(Array.length ba - 1) in
      Array.init w (fun i -> if i < Array.length ba then ba.(i) else msb)

and blast_binop ctx (op : Expr.binop) a b : int array =
  let w = Array.length a in
  match op with
  | Expr.Add -> adder ctx a b
  | Expr.Sub -> subtract ctx a b
  | Expr.Mul -> mul ctx a b
  | Expr.And -> Array.init w (fun i -> g_and ctx a.(i) b.(i))
  | Expr.Or -> Array.init w (fun i -> g_or ctx a.(i) b.(i))
  | Expr.Xor -> Array.init w (fun i -> g_xor ctx a.(i) b.(i))
  | Expr.Udiv -> fst (udivrem ctx a b)
  | Expr.Urem -> snd (udivrem ctx a b)
  | Expr.Sdiv ->
      let sa = a.(w - 1) and sb = b.(w - 1) in
      let abs_a = mux_bits ctx sa (negate_bits ctx a) a in
      let abs_b = mux_bits ctx sb (negate_bits ctx b) b in
      let q, _ = udivrem ctx abs_a abs_b in
      let sign = g_xor ctx sa sb in
      (* Division by zero must still yield all-ones (Expr.eval semantics). *)
      let bz = is_zero ctx b in
      let signed_q = mux_bits ctx sign (negate_bits ctx q) q in
      mux_bits ctx bz (Array.make w ctx.true_lit) signed_q
  | Expr.Srem ->
      let sa = a.(w - 1) and sb = b.(w - 1) in
      let abs_a = mux_bits ctx sa (negate_bits ctx a) a in
      let abs_b = mux_bits ctx sb (negate_bits ctx b) b in
      let _, r = udivrem ctx abs_a abs_b in
      let signed_r = mux_bits ctx sa (negate_bits ctx r) r in
      let bz = is_zero ctx b in
      mux_bits ctx bz a signed_r
  | Expr.Shl -> shifter ctx ~kind:`Shl a b
  | Expr.Lshr -> shifter ctx ~kind:`Lshr a b
  | Expr.Ashr -> shifter ctx ~kind:`Ashr a b
  | Expr.Rotl -> shifter ctx ~kind:`Rotl a b
  | Expr.Rotr -> shifter ctx ~kind:`Rotr a b

and blast_cmp ctx (op : Expr.cmp) a b : int =
  let w = Array.length a in
  let flip_msb (x : int array) =
    Array.init w (fun i -> if i = w - 1 then Sat.neg x.(i) else x.(i))
  in
  match op with
  | Expr.Eq -> eq_bits ctx a b
  | Expr.Ult -> ult ctx a b
  | Expr.Ule -> Sat.neg (ult ctx b a)
  | Expr.Slt -> ult ctx (flip_msb a) (flip_msb b)
  | Expr.Sle -> Sat.neg (ult ctx (flip_msb b) (flip_msb a))

(** Assert a width-1 expression true. *)
let assert_true ctx (e : Expr.t) =
  let bits = blast ctx e in
  add ctx [ bits.(0) ]

(** Extract the value of an expression variable from the SAT model. *)
let model_of_var ctx (v : Expr.var) : int64 =
  match Hashtbl.find_opt ctx.var_bits v.vid with
  | None -> 0L  (* unconstrained *)
  | Some bits ->
      let r = ref 0L in
      for i = Array.length bits - 1 downto 0 do
        let lit = bits.(i) in
        let var_val = Sat.model_value ctx.sat (Sat.var_of_lit lit) in
        let bit_val = if lit land 1 = 0 then var_val else not var_val in
        (* Constant lits resolve through the pinned true variable. *)
        r := Int64.logor (Int64.shift_left !r 1) (if bit_val then 1L else 0L)
      done;
      !r
