(* Tests for the SMT substrate: SAT solver, expression semantics,
   bit-blasting correctness against the evaluator, and the two-tier
   solver. *)

open Wasai_smt

(* ------------------------------------------------------------------ *)
(* SAT                                                                  *)
(* ------------------------------------------------------------------ *)

let lit v ~pos = Sat.lit_of_var v ~positive:pos

let test_sat_basic () =
  let s = Sat.create () in
  let a = Sat.new_var s and b = Sat.new_var s in
  ignore (Sat.add_clause s [ lit a ~pos:true; lit b ~pos:true ]);
  ignore (Sat.add_clause s [ lit a ~pos:false ]);
  Alcotest.(check bool) "sat" true (Sat.solve s = Sat.Sat);
  Alcotest.(check bool) "a false" false (Sat.model_value s a);
  Alcotest.(check bool) "b true" true (Sat.model_value s b)

let test_sat_unsat () =
  let s = Sat.create () in
  let a = Sat.new_var s and b = Sat.new_var s in
  ignore (Sat.add_clause s [ lit a ~pos:true; lit b ~pos:true ]);
  ignore (Sat.add_clause s [ lit a ~pos:true; lit b ~pos:false ]);
  ignore (Sat.add_clause s [ lit a ~pos:false; lit b ~pos:true ]);
  ignore (Sat.add_clause s [ lit a ~pos:false; lit b ~pos:false ]);
  Alcotest.(check bool) "unsat" true (Sat.solve s = Sat.Unsat)

(* Pigeonhole principle PHP(n+1, n): always unsat, needs real conflict
   analysis to finish quickly. *)
let pigeonhole n =
  let s = Sat.create () in
  let v = Array.init (n + 1) (fun _ -> Array.init n (fun _ -> Sat.new_var s)) in
  (* Every pigeon in some hole. *)
  for p = 0 to n do
    ignore
      (Sat.add_clause s (List.init n (fun h -> lit v.(p).(h) ~pos:true)))
  done;
  (* No two pigeons share a hole. *)
  for h = 0 to n - 1 do
    for p1 = 0 to n do
      for p2 = p1 + 1 to n do
        ignore
          (Sat.add_clause s [ lit v.(p1).(h) ~pos:false; lit v.(p2).(h) ~pos:false ])
      done
    done
  done;
  Sat.solve s

let test_sat_pigeonhole () =
  Alcotest.(check bool) "php(5,4) unsat" true (pigeonhole 4 = Sat.Unsat);
  Alcotest.(check bool) "php(7,6) unsat" true (pigeonhole 6 = Sat.Unsat)

(* Random 3-SAT near the phase transition: whatever the answer, a SAT
   answer must come with a genuine model. *)
let qcheck_random_3sat =
  QCheck.Test.make ~name:"random 3-SAT models are genuine" ~count:60
    QCheck.(pair (int_bound 1000000) (int_range 8 20))
    (fun (seed, nv) ->
      let rng = Wasai_support.Rand.create (Int64.of_int seed) in
      let s = Sat.create () in
      let vars = Array.init nv (fun _ -> Sat.new_var s) in
      let ncl = int_of_float (4.0 *. float_of_int nv) in
      let clauses = ref [] in
      for _ = 1 to ncl do
        let cl =
          List.init 3 (fun _ ->
              lit vars.(Wasai_support.Rand.int rng nv)
                ~pos:(Wasai_support.Rand.bool rng))
        in
        clauses := cl :: !clauses;
        ignore (Sat.add_clause s cl)
      done;
      match Sat.solve s with
      | Sat.Unsat | Sat.Unknown -> true
      | Sat.Sat ->
          List.for_all
            (fun cl ->
              List.exists
                (fun l ->
                  let v = Sat.var_of_lit l in
                  let positive = l land 1 = 0 in
                  Sat.model_value s v = positive)
                cl)
            !clauses)

(* ------------------------------------------------------------------ *)
(* Expressions                                                          *)
(* ------------------------------------------------------------------ *)

let test_expr_fold () =
  let open Expr in
  Alcotest.(check bool) "const fold add" true
    (binop Add (const 32 7L) (const 32 5L) = const 32 12L);
  Alcotest.(check bool) "mask wraps" true
    (binop Add (const 8 255L) (const 8 1L) = const 8 0L);
  Alcotest.(check bool) "eq fold" true (cmp Eq (const 64 3L) (const 64 3L) = true_);
  let v = var (fresh_var ~name:"x" 64) in
  Alcotest.(check bool) "x + 0 = x" true (binop Add v (const 64 0L) = v);
  Alcotest.(check bool) "x * 0 = 0" true (binop Mul v (const 64 0L) = const 64 0L);
  Alcotest.(check bool) "not not x = x" true (unop Not (unop Not v) = v)

let test_expr_invert_rules () =
  let open Expr in
  let x = fresh_var ~name:"x" 64 in
  (* ((x + 5) == 12) folds to (x == 7). *)
  let e = cmp Eq (binop Add (var x) (const 64 5L)) (const 64 12L) in
  (match e with
   | Cmp (Eq, Var v, Const (_, 7L)) ->
       Alcotest.(check int) "var preserved" x.vid v.vid
   | _ -> Alcotest.failf "unexpected shape: %s" (to_string e));
  (* ((x ^ c) == d) folds to (x == c^d). *)
  let e2 = cmp Eq (binop Xor (const 64 0xFFL) (var x)) (const 64 0x0FL) in
  match e2 with
  | Cmp (Eq, Var _, Const (_, 0xF0L)) -> ()
  | _ -> Alcotest.failf "unexpected shape: %s" (to_string e2)

let test_expr_signedness () =
  let open Expr in
  Alcotest.(check int64) "to_signed 8-bit" (-1L) (to_signed 8 255L);
  Alcotest.(check bool) "slt signed" true
    (cmp Slt (const 8 255L) (const 8 1L) = true_);
  Alcotest.(check bool) "ult unsigned" true
    (cmp Ult (const 8 1L) (const 8 255L) = true_)

let test_expr_popcnt_clz () =
  let open Expr in
  Alcotest.(check bool) "popcnt" true (unop Popcnt (const 64 0xF0F0L) = const 64 8L);
  Alcotest.(check bool) "clz 32" true (unop Clz (const 32 1L) = const 32 31L);
  Alcotest.(check bool) "ctz" true (unop Ctz (const 32 8L) = const 32 3L);
  Alcotest.(check bool) "clz 0" true (unop Clz (const 16 0L) = const 16 16L)

(* ------------------------------------------------------------------ *)
(* Bit-blasting vs. evaluator                                           *)
(* ------------------------------------------------------------------ *)

(* Generate random expressions over two variables. *)
let gen_expr width =
  let open QCheck.Gen in
  let binops =
    Expr.
      [
        Add; Sub; Mul; And; Or; Xor; Shl; Lshr; Ashr; Udiv; Urem; Sdiv; Srem;
        Rotl; Rotr;
      ]
  in
  let unops = Expr.[ Not; Neg; Popcnt; Clz; Ctz ] in
  fun (x : Expr.var) (y : Expr.var) ->
    fix
      (fun self n ->
        if n <= 0 then
          oneof
            [
              return (Expr.var x);
              return (Expr.var y);
              map (fun v -> Expr.const width (Int64.of_int v)) int;
            ]
        else
          frequency
            [
              (1, return (Expr.var x));
              (1, return (Expr.var y));
              ( 4,
                map3
                  (fun op a b -> Expr.binop op a b)
                  (oneofl binops) (self (n / 2)) (self (n / 2)) );
              ( 2,
                map2 (fun op a -> Expr.unop op a) (oneofl unops) (self (n - 1)) );
              ( 1,
                map3
                  (fun c a b -> Expr.ite (Expr.cmp Expr.Ult c a) a b)
                  (self (n / 2)) (self (n / 2)) (self (n / 2)) );
            ])
      4

let blast_agrees_with_eval ?(count = 150) width =
  let x = Expr.fresh_var ~name:"x" width in
  let y = Expr.fresh_var ~name:"y" width in
  let gen =
    QCheck.Gen.(
      triple (gen_expr width x y) (map Int64.of_int int) (map Int64.of_int int))
  in
  QCheck.Test.make
    ~name:(Printf.sprintf "bitblast = eval (width %d)" width)
    ~count
    (QCheck.make gen ~print:(fun (e, a, b) ->
         Printf.sprintf "%s with x=%Ld y=%Ld" (Expr.to_string e) a b))
    (fun (e, xv, yv) ->
      let env = Hashtbl.create 4 in
      Hashtbl.replace env x.Expr.vid xv;
      Hashtbl.replace env y.Expr.vid yv;
      let expected = Expr.eval env e in
      (* Pin x and y, assert e == expected: must be SAT. *)
      let pin =
        Expr.
          [
            cmp Eq (var x) (const width xv);
            cmp Eq (var y) (const width yv);
          ]
      in
      let c_eq = Expr.cmp Expr.Eq e (Expr.const width expected) in
      let ctx = Bitblast.create () in
      List.iter (Bitblast.assert_true ctx) (c_eq :: pin);
      match Sat.solve ctx.Bitblast.sat with
      | Sat.Sat -> (
          (* And e != expected must be UNSAT. *)
          let ctx2 = Bitblast.create () in
          List.iter (Bitblast.assert_true ctx2)
            (Expr.not_ c_eq :: pin);
          match Sat.solve ctx2.Bitblast.sat with
          | Sat.Unsat -> true
          | _ -> false)
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Solver                                                               *)
(* ------------------------------------------------------------------ *)

let test_solver_quick_path () =
  let open Expr in
  let x = fresh_var ~name:"x" 64 and y = fresh_var ~name:"y" 64 in
  let before = (Atomic.get Solver.stats.Solver.quick_solved) in
  (match
     Solver.check
       [
         cmp Eq (var x) (const 64 42L);
         cmp Eq (binop Add (var y) (const 64 1L)) (const 64 100L);
       ]
   with
  | Solver.Sat m ->
      Alcotest.(check int64) "x" 42L (Hashtbl.find m x.vid);
      Alcotest.(check int64) "y" 99L (Hashtbl.find m y.vid)
  | _ -> Alcotest.fail "expected sat");
  Alcotest.(check bool) "went through quick path" true
    ((Atomic.get Solver.stats.Solver.quick_solved) > before)

let test_solver_blast_path () =
  let open Expr in
  let x = fresh_var ~name:"x" 32 in
  (* popcnt(x) == 17 and x < 2^20: genuinely needs the circuit. *)
  match
    Solver.check
      [
        cmp Eq (unop Popcnt (var x)) (const 32 17L);
        cmp Ult (var x) (const 32 0x100000L);
      ]
  with
  | Solver.Sat m ->
      let xv = Hashtbl.find m x.vid in
      let pc = Expr.eval_unop 32 Expr.Popcnt xv in
      Alcotest.(check int64) "model has 17 bits set" 17L pc;
      Alcotest.(check bool) "bound respected" true
        (Int64.unsigned_compare (Expr.mask 32 xv) 0x100000L < 0)
  | _ -> Alcotest.fail "expected sat"

let test_solver_mul_equation () =
  let open Expr in
  let x = fresh_var ~name:"x" 16 in
  match
    Solver.check [ cmp Eq (binop Mul (var x) (const 16 3L)) (const 16 21L) ]
  with
  | Solver.Sat m ->
      let xv = Expr.mask 16 (Hashtbl.find m x.vid) in
      Alcotest.(check int64) "3x = 21 (mod 2^16)" 21L
        (Expr.mask 16 (Int64.mul xv 3L))
  | _ -> Alcotest.fail "expected sat"

let test_solver_unsat () =
  let open Expr in
  let x = fresh_var ~name:"x" 64 in
  match
    Solver.check
      [
        cmp Ult (var x) (const 64 2L);
        cmp Ult (const 64 5L) (var x);
      ]
  with
  | Solver.Unsat -> ()
  | _ -> Alcotest.fail "expected unsat"

let test_solver_conflicting_equalities () =
  let open Expr in
  let x = fresh_var ~name:"x" 64 in
  match
    Solver.check [ cmp Eq (var x) (const 64 1L); cmp Eq (var x) (const 64 2L) ]
  with
  | Solver.Unsat -> ()
  | _ -> Alcotest.fail "expected unsat via quick path contradiction"

let test_solver_budget_unknown () =
  let open Expr in
  (* A 24-bit factoring-flavoured instance with a conflict budget of 1
     should exhaust. *)
  let x = fresh_var ~name:"x" 24 and y = fresh_var ~name:"y" 24 in
  let product = binop Mul (var x) (var y) in
  let r =
    Solver.check ~conflict_budget:1
      [
        cmp Eq product (const 24 (Int64.of_int 0x7F4C2D));
        cmp Ult (const 24 1L) (var x);
        cmp Ult (const 24 1L) (var y);
      ]
  in
  match r with
  | Solver.Unknown -> ()
  | Solver.Sat _ -> ()  (* found before first conflict: acceptable *)
  | Solver.Unsat -> Alcotest.fail "cannot be unsat before exploring"

let test_solver_popcount_unsat () =
  let open Expr in
  (* No 32-bit value has 33 set bits. *)
  let x = fresh_var ~name:"x" 32 in
  match Solver.check [ cmp Eq (unop Popcnt (var x)) (const 32 33L) ] with
  | Solver.Unsat -> ()
  | _ -> Alcotest.fail "expected unsat"

let test_solver_division_semantics () =
  let open Expr in
  (* x / 0 is all-ones in our semantics: (x udiv 0) == 2^16-1 must be SAT
     for every x, and == 0 must be UNSAT. *)
  let x = fresh_var ~name:"x" 16 in
  (match
     Solver.check
       [ cmp Eq (binop Udiv (var x) (const 16 0L)) (const 16 0xFFFFL) ]
   with
  | Solver.Sat _ -> ()
  | _ -> Alcotest.fail "div-by-zero convention should be satisfiable");
  match
    Solver.check [ cmp Eq (binop Udiv (var x) (const 16 0L)) (const 16 0L) ]
  with
  | Solver.Unsat -> ()
  | _ -> Alcotest.fail "expected unsat"

let test_validate_model () =
  let open Expr in
  let x = fresh_var ~name:"x" 64 in
  let cs = [ cmp Eq (var x) (const 64 9L) ] in
  let good = Hashtbl.create 1 in
  Hashtbl.replace good x.vid 9L;
  let bad = Hashtbl.create 1 in
  Hashtbl.replace bad x.vid 8L;
  Alcotest.(check bool) "good model" true (Solver.validate_model cs good);
  Alcotest.(check bool) "bad model" false (Solver.validate_model cs bad)

let qcheck_solver_models_validate =
  QCheck.Test.make ~name:"solver models satisfy constraints" ~count:100
    QCheck.(pair (int_bound 10_000) (int_bound 255))
    (fun (a, b) ->
      let open Expr in
      let x = fresh_var ~name:"x" 32 in
      let cs =
        [
          cmp Eq
            (binop And (var x) (const 32 0xFFL))
            (const 32 (Int64.of_int b));
          cmp Ule (const 32 (Int64.of_int a)) (var x);
        ]
      in
      match Solver.check cs with
      | Solver.Sat m -> Solver.validate_model cs m
      | Solver.Unsat -> false (* always satisfiable *)
      | Solver.Unknown -> true)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "wasai_smt"
    [
      ( "sat",
        [
          Alcotest.test_case "basic" `Quick test_sat_basic;
          Alcotest.test_case "unsat" `Quick test_sat_unsat;
          Alcotest.test_case "pigeonhole" `Quick test_sat_pigeonhole;
          qc qcheck_random_3sat;
        ] );
      ( "expr",
        [
          Alcotest.test_case "constant folding" `Quick test_expr_fold;
          Alcotest.test_case "inversion rules" `Quick test_expr_invert_rules;
          Alcotest.test_case "signedness" `Quick test_expr_signedness;
          Alcotest.test_case "popcnt/clz/ctz" `Quick test_expr_popcnt_clz;
        ] );
      ( "bitblast",
        [
          qc (blast_agrees_with_eval 8);
          qc (blast_agrees_with_eval 16);
          qc (blast_agrees_with_eval 32);
          qc (blast_agrees_with_eval ~count:15 64);
          Alcotest.test_case "width-1 booleans blast" `Quick (fun () ->
              let open Expr in
              let p = fresh_var ~name:"p" 1 and q = fresh_var ~name:"q" 1 in
              (* p && !q, q == 0: satisfiable with p=1,q=0. *)
              match
                Solver.check
                  [
                    and_ (var p) (not_ (var q));
                    cmp Eq (var q) (const 1 0L);
                  ]
              with
              | Solver.Sat m ->
                  Alcotest.(check int64) "p" 1L (Hashtbl.find m p.vid)
              | _ -> Alcotest.fail "expected sat");
        ] );
      ( "solver",
        [
          Alcotest.test_case "quick path" `Quick test_solver_quick_path;
          Alcotest.test_case "popcount via blast" `Quick test_solver_blast_path;
          Alcotest.test_case "mul equation" `Quick test_solver_mul_equation;
          Alcotest.test_case "unsat interval" `Quick test_solver_unsat;
          Alcotest.test_case "conflicting equalities" `Quick
            test_solver_conflicting_equalities;
          Alcotest.test_case "budget => unknown" `Quick test_solver_budget_unknown;
          Alcotest.test_case "popcount unsat" `Quick test_solver_popcount_unsat;
          Alcotest.test_case "division semantics" `Quick
            test_solver_division_semantics;
          Alcotest.test_case "validate_model" `Quick test_validate_model;
          qc qcheck_solver_models_validate;
        ] );
    ]
