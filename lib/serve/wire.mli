(** The [wasai-serve-v1] wire grammar: the line-delimited protocol spoken
    over the serve daemon's Unix-domain socket.

    Like the journal and corpus grammars, every line is tab-separated,
    starts with a version magic, and is parsed {e strictly}: wrong magic,
    wrong verb, wrong field count, malformed numbers, out-of-alphabet
    tenant or target names and bad hex all reject with a reason instead
    of being guessed at — a daemon fed garbage answers [ERR] and hangs
    up, it never half-parses a submission.

    Requests (client to daemon), one per line:
    {v
    wasai-serve-v1 <TAB> SUBMIT <TAB> tenant <TAB> name <TAB> wasmhex <TAB> abihex|- [<TAB> slices=K]
    wasai-serve-v1 <TAB> PING
    wasai-serve-v1 <TAB> STATS <TAB> tenant
    wasai-serve-v1 <TAB> METRICS
    wasai-serve-v1 <TAB> SHUTDOWN
    v}

    Responses (daemon to client) — admission replies and streamed
    verdicts share one connection, so every response names its subject:
    {v
    wasai-serve-v1 <TAB> QUEUED <TAB> tenant <TAB> name <TAB> depth=N
    wasai-serve-v1 <TAB> BUSY <TAB> tenant <TAB> name <TAB> retry-after=MS <TAB> depth=N
    wasai-serve-v1 <TAB> VERDICT <TAB> tenant <TAB> fresh|cached <TAB> wait=MS <TAB> <journal line>
    wasai-serve-v1 <TAB> ERR <TAB> name|- <TAB> reason
    wasai-serve-v1 <TAB> PONG <TAB> jobs=N <TAB> tenants=N
    wasai-serve-v1 <TAB> STATS <TAB> tenant <TAB> submitted=N <TAB> completed=N
                   <TAB> rejected=N <TAB> qwait=HIST <TAB> latency=HIST
                   <TAB> uptime=MS <TAB> backend=NAME
    wasai-serve-v1 <TAB> METRICS <TAB> bodyhex
    wasai-serve-v1 <TAB> BYE <TAB> completed=N
    v}

    The [VERDICT] payload embeds a complete {!Journal} line — verdict
    flags, deterministic outcome counters, solver counters, provenance
    stamp and wire-encoded exploit evidence — verbatim: the line a
    client streams is the line the tenant journal holds, so streamed
    results and crash-resumed reports can never disagree.  The journal
    line contains tabs of its own; the parser rejoins everything after
    the [wait=] field and hands it to {!Journal.entry_of_line}.
    [HIST] is {!Wasai_support.Metrics.Histogram.to_wire} (one token, no
    tabs).

    [METRICS] answers with a Prometheus text exposition — per-tenant
    counters, queue-wait/latency histograms with [le] buckets (merged
    exactly across worker domains: they are bumped under the daemon
    lock), the telemetry per-stage aggregates, uptime and backend.  The
    body is multi-line free text, so it rides inside the one-line
    grammar the same way module bytes do: hex-encoded into a single
    token ([bodyhex]). *)

module Journal = Wasai_campaign.Journal

val magic : string
(** ["wasai-serve-v1"]. *)

val valid_tenant : string -> bool
(** Tenant names become directory names under the served root, so the
    alphabet is locked down: 1..32 chars of [a-z0-9._-], and neither
    ["."] nor [".."]. *)

val valid_target : string -> bool
(** Target names double as EOSIO deployment accounts: 1..12 chars of
    [a-z1-5.]. *)

val hex_of_string : string -> string
(** Lowercase hex of the raw bytes, the [wasmhex]/[abihex] codec. *)

val string_of_hex : string -> (string, string) result
(** Strict inverse: even length, digits [0-9a-f] only. *)

type request =
  | Submit of {
      rq_tenant : string;
      rq_name : string;
      rq_wasm : string;  (** raw module bytes (binary Wasm or .wat text) *)
      rq_abi : string option;  (** ABI sidecar text, [None] = canonical ABI *)
      rq_slices : int;
          (** partition this submission's round budget into K parallel
              slices ({!Wasai_campaign.Campaign.slicing}); 1 (the
              default, and the classic 6-field line byte for byte) =
              whole-target.  The daemon clamps K to the budget's
              granularity; the merged verdict is byte-identical
              whatever K. *)
    }
  | Ping
  | Stats of string  (** tenant *)
  | Metrics  (** daemon-wide Prometheus exposition *)
  | Shutdown

type verdict_kind =
  | Fresh  (** fuzzed by this submission *)
  | Cached  (** replayed from the tenant journal (same name, already done) *)

type response =
  | Queued of { rp_tenant : string; rp_name : string; rp_depth : int }
      (** admitted; [rp_depth] = tenant in-flight count after admission *)
  | Busy of {
      rp_tenant : string;
      rp_name : string;
      rp_retry_ms : int;  (** suggested client back-off *)
      rp_depth : int;
    }  (** backpressure: tenant queue full (or this name already queued) *)
  | Verdict of {
      rp_tenant : string;
      rp_kind : verdict_kind;
      rp_wait_ms : int;  (** submission-to-verdict latency, milliseconds *)
      rp_entry : Journal.entry;
    }
  | Err of { rp_name : string option; rp_reason : string }
      (** [rp_name = None] marks a protocol-level error (the daemon hangs
          up); [Some subject] scopes the failure to one submission (a
          target name) or one [STATS] query (a tenant name) *)
  | Pong of { rp_jobs : int; rp_tenants : int }
  | StatsReply of {
      rp_tenant : string;
      rp_submitted : int;
      rp_completed : int;
      rp_rejected : int;
      rp_qwait : string;  (** queue-wait histogram, [Histogram.to_wire] *)
      rp_latency : string;  (** end-to-end histogram, [Histogram.to_wire] *)
      rp_uptime_ms : int;  (** daemon uptime, milliseconds *)
      rp_backend : string;  (** the daemon's [--backend] (interp|compiled|auto) *)
    }
  | MetricsReply of { rp_body : string }
      (** the Prometheus text exposition, verbatim (hex on the wire) *)
  | Bye of { rp_completed : int }  (** shutdown acknowledged *)

val line_of_request : request -> string
(** Single line, no trailing newline.  Raises [Invalid_argument] on an
    invalid tenant/target name, an empty [rq_wasm] or [rq_slices < 1] —
    malformed requests must fail at the producer, not on the wire. *)

val request_of_line : string -> (request, string) result
(** Strict inverse of {!line_of_request}. *)

val line_of_response : response -> string
(** Single line, no trailing newline.  [Err] reasons have tabs/newlines
    flattened to spaces so the line stays well-formed. *)

val response_of_line : string -> (response, string) result
(** Strict inverse of {!line_of_response}; [VERDICT] payloads are
    validated by {!Journal.entry_of_line}. *)
