(** Bitvector expressions (widths 1–64), the constraint language of the
    symbolic executor.

    This stands in for Z3's BitVec terms (the sealed container has no Z3);
    booleans are width-1 vectors.  Expressions are hash-consed: every node
    is interned in a per-domain table, so structurally equal expressions
    built in one domain are physically shared, carry a precomputed hash,
    width and variable-occurrence bit, and a process-unique [tag] that
    downstream passes (bit-blasting, substitution, the solver cache) use
    as a memoization key.  Smart constructors fold constants aggressively
    and normalize operand order so that fully concrete replays never reach
    the solver and recurring constraints share one representative. *)

type width = int

type var = {
  vid : int;
  vname : string;
  vwidth : width;
}

type unop =
  | Not  (** bitwise complement *)
  | Neg  (** two's complement negation *)
  | Popcnt
  | Clz
  | Ctz

type binop =
  | Add | Sub | Mul
  | Udiv | Urem | Sdiv | Srem
  | And | Or | Xor
  | Shl | Lshr | Ashr
  | Rotl | Rotr

type cmp = Eq | Ult | Slt | Ule | Sle

type t = {
  node : node;
  tag : int;
  hkey : int;
  ewidth : width;
  evars : bool;
}

and node =
  | Const of width * int64  (** value masked to width *)
  | Var of var
  | Unop of unop * t
  | Binop of binop * t * t
  | Cmp of cmp * t * t  (** width-1 result *)
  | Ite of t * t * t  (** condition has width 1 *)
  | Extract of int * int * t  (** [Extract (hi, lo, e)], bits lo..hi inclusive *)
  | Concat of t * t  (** [Concat (hi, lo)]: hi bits above lo bits *)
  | Zext of width * t
  | Sext of width * t

(* ------------------------------------------------------------------ *)
(* Widths and masking                                                  *)
(* ------------------------------------------------------------------ *)

let mask width (v : int64) =
  if width >= 64 then v
  else Int64.logand v (Int64.sub (Int64.shift_left 1L width) 1L)

let width_of e = e.ewidth

(** Interpret a masked value of [width] bits as a signed int64. *)
let to_signed width (v : int64) =
  if width >= 64 then v
  else
    let sign_bit = Int64.shift_left 1L (width - 1) in
    if Int64.logand v sign_bit = 0L then v
    else Int64.sub v (Int64.shift_left 1L width)

(* ------------------------------------------------------------------ *)
(* Hash-consing                                                        *)
(* ------------------------------------------------------------------ *)

let tag e = e.tag
let hash e = e.hkey

let unop_rank = function Not -> 0 | Neg -> 1 | Popcnt -> 2 | Clz -> 3 | Ctz -> 4

let binop_rank = function
  | Add -> 0 | Sub -> 1 | Mul -> 2
  | Udiv -> 3 | Urem -> 4 | Sdiv -> 5 | Srem -> 6
  | And -> 7 | Or -> 8 | Xor -> 9
  | Shl -> 10 | Lshr -> 11 | Ashr -> 12
  | Rotl -> 13 | Rotr -> 14

let cmp_rank = function Eq -> 0 | Ult -> 1 | Slt -> 2 | Ule -> 3 | Sle -> 4

(* Structural hash built from the children's [hkey]s, so it is O(1) per
   node, deterministic given variable ids, and equal for structurally
   equal expressions whether or not they are physically shared. *)
let hash_node n =
  let comb h x = ((h * 65599) + x) land 0x3FFFFFFF in
  match n with
  | Const (w, v) ->
      comb (comb 1 w)
        (Int64.to_int (Int64.logxor v (Int64.shift_right_logical v 31))
        land 0x3FFFFFFF)
  | Var v -> comb 2 v.vid
  | Unop (op, a) -> comb (comb 3 (unop_rank op)) a.hkey
  | Binop (op, a, b) -> comb (comb (comb 4 (binop_rank op)) a.hkey) b.hkey
  | Cmp (op, a, b) -> comb (comb (comb 5 (cmp_rank op)) a.hkey) b.hkey
  | Ite (c, a, b) -> comb (comb (comb 6 c.hkey) a.hkey) b.hkey
  | Extract (hi, lo, a) -> comb (comb (comb 7 hi) lo) a.hkey
  | Concat (a, b) -> comb (comb 8 a.hkey) b.hkey
  | Zext (w, a) -> comb (comb 9 w) a.hkey
  | Sext (w, a) -> comb (comb 10 w) a.hkey

(* Shallow equality for the intern table: children compare by physical
   identity because they are already interned. *)
let node_shallow_equal n1 n2 =
  match (n1, n2) with
  | Const (w1, v1), Const (w2, v2) -> w1 = w2 && Int64.equal v1 v2
  | Var v1, Var v2 -> v1.vid = v2.vid
  | Unop (o1, a1), Unop (o2, a2) -> o1 = o2 && a1 == a2
  | Binop (o1, a1, b1), Binop (o2, a2, b2) -> o1 = o2 && a1 == a2 && b1 == b2
  | Cmp (o1, a1, b1), Cmp (o2, a2, b2) -> o1 = o2 && a1 == a2 && b1 == b2
  | Ite (c1, a1, b1), Ite (c2, a2, b2) -> c1 == c2 && a1 == a2 && b1 == b2
  | Extract (h1, l1, a1), Extract (h2, l2, a2) ->
      h1 = h2 && l1 = l2 && a1 == a2
  | Concat (a1, b1), Concat (a2, b2) -> a1 == a2 && b1 == b2
  | Zext (w1, a1), Zext (w2, a2) -> w1 = w2 && a1 == a2
  | Sext (w1, a1), Sext (w2, a2) -> w1 = w2 && a1 == a2
  | _ -> false

module Node_tbl = Hashtbl.Make (struct
  type nonrec t = node

  let equal = node_shallow_equal
  let hash = hash_node
end)

let node_width = function
  | Const (w, _) -> w
  | Var v -> v.vwidth
  | Unop (_, a) -> a.ewidth
  | Binop (_, a, _) -> a.ewidth
  | Cmp _ -> 1
  | Ite (_, a, _) -> a.ewidth
  | Extract (hi, lo, _) -> hi - lo + 1
  | Concat (a, b) -> a.ewidth + b.ewidth
  | Zext (w, _) | Sext (w, _) -> w

let node_evars = function
  | Const _ -> false
  | Var _ -> true
  | Unop (_, a) | Extract (_, _, a) | Zext (_, a) | Sext (_, a) -> a.evars
  | Binop (_, a, b) | Cmp (_, a, b) | Concat (a, b) -> a.evars || b.evars
  | Ite (c, a, b) -> c.evars || a.evars || b.evars

(* Tags come from a global atomic so they are unique process-wide: an
   expression built at module-initialization time (e.g. [true_]) can be
   mixed into any domain's terms without colliding in tag-keyed memo
   tables.  The intern tables themselves are per-domain (expressions
   never migrate between campaign workers), strong — GC-driven sharing
   would make the ==-shortcuts nondeterministic — and bounded only by
   [hashcons_compact] at session boundaries. *)
let tag_counter = Atomic.make 0

let intern_tbl : t Node_tbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Node_tbl.create 4096)

let intern (n : node) : t =
  let tbl = Domain.DLS.get intern_tbl in
  match Node_tbl.find_opt tbl n with
  | Some e -> e
  | None ->
      let e =
        {
          node = n;
          tag = Atomic.fetch_and_add tag_counter 1 + 1;
          hkey = hash_node n;
          ewidth = node_width n;
          evars = node_evars n;
        }
      in
      Node_tbl.add tbl n e;
      e

let hashcons_stats () =
  (Node_tbl.length (Domain.DLS.get intern_tbl), Atomic.get tag_counter)

let hashcons_compact ?(threshold = 1 lsl 17) () =
  let tbl = Domain.DLS.get intern_tbl in
  if Node_tbl.length tbl > threshold then Node_tbl.reset tbl

(* Structural equality: physical identity is the common case within a
   domain; the deep fallback (variables by id) keeps equality exact for
   expressions interned on different sides of a compaction or domain
   boundary.  [hkey] prunes almost all unequal comparisons. *)
let rec equal a b =
  a == b
  || a.hkey = b.hkey && a.ewidth = b.ewidth
     &&
     match (a.node, b.node) with
     | Const (w1, v1), Const (w2, v2) -> w1 = w2 && Int64.equal v1 v2
     | Var v1, Var v2 -> v1.vid = v2.vid
     | Unop (o1, x), Unop (o2, y) -> o1 = o2 && equal x y
     | Binop (o1, x1, y1), Binop (o2, x2, y2) ->
         o1 = o2 && equal x1 x2 && equal y1 y2
     | Cmp (o1, x1, y1), Cmp (o2, x2, y2) ->
         o1 = o2 && equal x1 x2 && equal y1 y2
     | Ite (c1, x1, y1), Ite (c2, x2, y2) ->
         equal c1 c2 && equal x1 x2 && equal y1 y2
     | Extract (h1, l1, x), Extract (h2, l2, y) ->
         h1 = h2 && l1 = l2 && equal x y
     | Concat (x1, y1), Concat (x2, y2) -> equal x1 x2 && equal y1 y2
     | Zext (w1, x), Zext (w2, y) | Sext (w1, x), Sext (w2, y) ->
         w1 = w2 && equal x y
     | _ -> false

let node_rank = function
  | Const _ -> 0 | Var _ -> 1 | Unop _ -> 2 | Binop _ -> 3 | Cmp _ -> 4
  | Ite _ -> 5 | Extract _ -> 6 | Concat _ -> 7 | Zext _ -> 8 | Sext _ -> 9

(* Deterministic structural order used to canonicalize commutative
   operands.  Deliberately blind to [vid] and [tag] (both depend on
   allocation order, which is scheduling-dependent under parallel
   campaigns): variables compare by width then name.  Distinct variables
   may therefore compare equal — callers must keep the original operand
   order on ties so the result stays deterministic. *)
let rec struct_compare a b =
  if a == b then 0
  else
    match (a.node, b.node) with
    | Const (w1, v1), Const (w2, v2) ->
        let c = Int.compare w1 w2 in
        if c <> 0 then c else Int64.unsigned_compare v1 v2
    | Var v1, Var v2 ->
        let c = Int.compare v1.vwidth v2.vwidth in
        if c <> 0 then c else String.compare v1.vname v2.vname
    | Unop (o1, x), Unop (o2, y) ->
        let c = Int.compare (unop_rank o1) (unop_rank o2) in
        if c <> 0 then c else struct_compare x y
    | Binop (o1, x1, y1), Binop (o2, x2, y2) ->
        let c = Int.compare (binop_rank o1) (binop_rank o2) in
        if c <> 0 then c
        else
          let c = struct_compare x1 x2 in
          if c <> 0 then c else struct_compare y1 y2
    | Cmp (o1, x1, y1), Cmp (o2, x2, y2) ->
        let c = Int.compare (cmp_rank o1) (cmp_rank o2) in
        if c <> 0 then c
        else
          let c = struct_compare x1 x2 in
          if c <> 0 then c else struct_compare y1 y2
    | Ite (c1, x1, y1), Ite (c2, x2, y2) ->
        let c = struct_compare c1 c2 in
        if c <> 0 then c
        else
          let c = struct_compare x1 x2 in
          if c <> 0 then c else struct_compare y1 y2
    | Extract (h1, l1, x), Extract (h2, l2, y) ->
        let c = Int.compare h1 h2 in
        if c <> 0 then c
        else
          let c = Int.compare l1 l2 in
          if c <> 0 then c else struct_compare x y
    | Concat (x1, y1), Concat (x2, y2) ->
        let c = struct_compare x1 x2 in
        if c <> 0 then c else struct_compare y1 y2
    | Zext (w1, x), Zext (w2, y) | Sext (w1, x), Sext (w2, y) ->
        let c = Int.compare w1 w2 in
        if c <> 0 then c else struct_compare x y
    | _ -> Int.compare (node_rank a.node) (node_rank b.node)

(* ------------------------------------------------------------------ *)
(* Variables                                                           *)
(* ------------------------------------------------------------------ *)

(* Atomic so concurrent fuzzing domains never mint duplicate ids; verdicts
   do not depend on the numeric id values, only on their uniqueness. *)
let var_counter = Atomic.make 0

let fresh_var ?(name = "v") width : var =
  { vid = Atomic.fetch_and_add var_counter 1 + 1; vname = name; vwidth = width }

let var v = intern (Var v)

(* ------------------------------------------------------------------ *)
(* Constant evaluation of operations                                    *)
(* ------------------------------------------------------------------ *)

let eval_unop w (op : unop) (a : int64) : int64 =
  let a = mask w a in
  match op with
  | Not -> mask w (Int64.lognot a)
  | Neg -> mask w (Int64.neg a)
  | Popcnt ->
      let n = ref 0L in
      for i = 0 to w - 1 do
        if Int64.logand (Int64.shift_right_logical a i) 1L = 1L then
          n := Int64.add !n 1L
      done;
      !n
  | Clz ->
      let rec go i =
        if i < 0 then Int64.of_int w
        else if Int64.logand (Int64.shift_right_logical a i) 1L = 1L then
          Int64.of_int (w - 1 - i)
        else go (i - 1)
      in
      go (w - 1)
  | Ctz ->
      let rec go i =
        if i >= w then Int64.of_int w
        else if Int64.logand (Int64.shift_right_logical a i) 1L = 1L then
          Int64.of_int i
        else go (i + 1)
      in
      go 0

let eval_binop w (op : binop) (a : int64) (b : int64) : int64 =
  let a = mask w a and b = mask w b in
  let sa = to_signed w a and sb = to_signed w b in
  let shift_amt = Int64.to_int (Int64.unsigned_rem b (Int64.of_int w)) in
  match op with
  | Add -> mask w (Int64.add a b)
  | Sub -> mask w (Int64.sub a b)
  | Mul -> mask w (Int64.mul a b)
  | Udiv -> if b = 0L then mask w (-1L) else mask w (Int64.unsigned_div a b)
  | Urem -> if b = 0L then a else mask w (Int64.unsigned_rem a b)
  | Sdiv ->
      if b = 0L then mask w (-1L)
      else if sa = Int64.min_int && sb = -1L then mask w sa
      else mask w (Int64.div sa sb)
  | Srem ->
      if b = 0L then a
      else if sa = Int64.min_int && sb = -1L then 0L
      else mask w (Int64.rem sa sb)
  | And -> Int64.logand a b
  | Or -> Int64.logor a b
  | Xor -> Int64.logxor a b
  | Shl -> mask w (Int64.shift_left a shift_amt)
  | Lshr -> Int64.shift_right_logical a shift_amt
  | Ashr -> mask w (Int64.shift_right (to_signed w a) shift_amt)
  | Rotl ->
      if shift_amt = 0 then a
      else
        mask w
          (Int64.logor
             (Int64.shift_left a shift_amt)
             (Int64.shift_right_logical a (w - shift_amt)))
  | Rotr ->
      if shift_amt = 0 then a
      else
        mask w
          (Int64.logor
             (Int64.shift_right_logical a shift_amt)
             (Int64.shift_left a (w - shift_amt)))

let eval_cmp w (op : cmp) (a : int64) (b : int64) : bool =
  let a = mask w a and b = mask w b in
  match op with
  | Eq -> Int64.equal a b
  | Ult -> Int64.unsigned_compare a b < 0
  | Ule -> Int64.unsigned_compare a b <= 0
  | Slt -> Int64.compare (to_signed w a) (to_signed w b) < 0
  | Sle -> Int64.compare (to_signed w a) (to_signed w b) <= 0

(* ------------------------------------------------------------------ *)
(* Smart constructors                                                   *)
(* ------------------------------------------------------------------ *)

let const width v = intern (Const (width, mask width v))
let bool_ b = const 1 (if b then 1L else 0L)
let true_ = bool_ true
let false_ = bool_ false
let is_true e = match e.node with Const (1, 1L) -> true | _ -> false
let is_false e = match e.node with Const (1, 0L) -> true | _ -> false

let unop op e =
  match (op, e.node) with
  | _, Const (w, v) -> const w (eval_unop w op v)
  | Not, Unop (Not, inner) -> inner
  | Neg, Unop (Neg, inner) -> inner
  | _ -> intern (Unop (op, e))

let rec binop op a b =
  let w = a.ewidth in
  match (a.node, b.node) with
  | Const (_, va), Const (_, vb) -> const w (eval_binop w op va vb)
  | _ -> (
      match (op, a.node, b.node) with
      (* Identity / absorption rules keep replay expressions small. *)
      | Add, _, Const (_, 0L) -> a
      | Add, Const (_, 0L), _ -> b
      | Sub, _, Const (_, 0L) -> a
      | Sub, _, _ when equal a b -> const w 0L
      (* Subtraction by a constant becomes addition of its negation, so
         constant chains reassociate through one rule. *)
      | Sub, _, Const (wc, c) -> binop Add (const wc (Int64.neg c)) a
      | Mul, _, Const (_, 0L) | Mul, Const (_, 0L), _ -> const w 0L
      | Mul, _, Const (_, 1L) -> a
      | Mul, Const (_, 1L), _ -> b
      | And, _, Const (_, 0L) | And, Const (_, 0L), _ -> const w 0L
      | And, _, Const (w', m) when m = mask w' (-1L) -> a
      | And, Const (w', m), _ when m = mask w' (-1L) -> b
      | And, _, _ when equal a b -> a
      | Or, _, Const (_, 0L) -> a
      | Or, Const (_, 0L), _ -> b
      | Or, _, Const (w', m) when m = mask w' (-1L) -> const w (mask w (-1L))
      | Or, Const (w', m), _ when m = mask w' (-1L) -> const w (mask w (-1L))
      | Or, _, _ when equal a b -> a
      | Xor, _, Const (_, 0L) -> a
      | Xor, Const (_, 0L), _ -> b
      | Xor, _, _ when equal a b -> const w 0L
      | (Shl | Lshr | Ashr), _, Const (_, 0L) -> a
      | (Udiv | Sdiv), _, Const (_, 1L) -> a
      | (Urem | Srem), _, Const (_, 1L) -> const w 0L
      (* Constant-on-left normalisation for commutative ops (recursing
         exposes the reassociation rule below to the swapped pair). *)
      | (Add | Mul | And | Or | Xor), _, Const _ -> binop op b a
      (* Reassociate c1 ⋄ (c2 ⋄ e) -> (c1⋄c2) ⋄ e. *)
      | ( (Add | Mul | And | Or | Xor),
          Const (w1, c1),
          Binop (op', { node = Const (_, c2); _ }, e) )
        when op' = op ->
          binop op (const w1 (eval_binop w1 op c1 c2)) e
      | _ ->
          (* Canonical operand order for commutative ops; ties (e.g. two
             variables with the same name and width) keep the original
             order, so the choice never depends on vid or tag. *)
          let a, b =
            match op with
            | Add | Mul | And | Or | Xor ->
                if struct_compare a b > 0 then (b, a) else (a, b)
            | _ -> (a, b)
          in
          intern (Binop (op, a, b)))

let rec cmp op a b =
  let w = a.ewidth in
  match (a.node, b.node) with
  | Const (_, va), Const (_, vb) -> bool_ (eval_cmp w op va vb)
  | _ when equal a b -> (
      match op with Eq | Ule | Sle -> true_ | Ult | Slt -> false_)
  (* popcnt(y) == 0 <=> y == 0, and clz/ctz(y) == width <=> y == 0:
     undoes popcount-encoded equality tests without a counting circuit. *)
  | Unop (Popcnt, y), Const (_, 0L) when op = Eq -> cmp Eq y (const w 0L)
  | Const (_, 0L), Unop (Popcnt, y) when op = Eq -> cmp Eq y (const w 0L)
  | Unop ((Clz | Ctz), y), Const (_, c) when op = Eq && c = Int64.of_int w ->
      cmp Eq y (const w 0L)
  (* (c1 + e) == c2  <=>  e == c2 - c1 *)
  | Binop (Add, { node = Const (w1, c1); _ }, e), Const (_, c2) when op = Eq ->
      cmp Eq e (const w1 (Int64.sub c2 c1))
  (* (e xor c1) == c2  <=>  e == c1 xor c2 *)
  | Binop (Xor, { node = Const (w1, c1); _ }, e), Const (_, c2) when op = Eq ->
      cmp Eq e (const w1 (Int64.logxor c1 c2))
  (* zext(e) == c  <=>  e == c when c fits, else false *)
  | Zext (_, e), Const (_, c) when op = Eq ->
      if Int64.equal (mask e.ewidth c) c then cmp Eq e (const e.ewidth c)
      else false_
  (* Constant-on-right normalisation for equality. *)
  | Const _, _ when op = Eq -> cmp Eq b a
  | _ ->
      let a, b =
        match (op, a.node, b.node) with
        | Eq, Const _, _ | Eq, _, Const _ -> (a, b)
        | Eq, _, _ when struct_compare a b > 0 -> (b, a)
        | _ -> (a, b)
      in
      intern (Cmp (op, a, b))

(* Boolean connectives over width-1 vectors. *)
let not_ e =
  match e.node with
  | Const (1, v) -> bool_ (v = 0L)
  | _ -> binop Xor e (const 1 1L)

let ite c a b =
  match c.node with
  | Const (1, 1L) -> a
  | Const (1, 0L) -> b
  | _ -> (
      if equal a b then a
      else
        match (a.node, b.node) with
        | Const (1, 1L), Const (1, 0L) -> c
        | Const (1, 0L), Const (1, 1L) -> not_ c
        | _ -> intern (Ite (c, a, b)))

let rec extract hi lo e =
  let w = e.ewidth in
  if lo = 0 && hi = w - 1 then e
  else
    match e.node with
    | Const (_, v) -> const (hi - lo + 1) (Int64.shift_right_logical v lo)
    | Extract (_, lo', inner) -> extract (hi + lo') (lo + lo') inner
    | Concat (_, b) when hi < b.ewidth -> extract hi lo b
    | Concat (a, b) when lo >= b.ewidth ->
        extract (hi - b.ewidth) (lo - b.ewidth) a
    | Zext (_, inner) when hi < inner.ewidth -> extract hi lo inner
    | Zext (_, inner) when lo >= inner.ewidth -> const (hi - lo + 1) 0L
    | _ -> intern (Extract (hi, lo, e))

let concat hi lo =
  match (hi.node, lo.node) with
  | Const (wh, vh), Const (wl, vl) ->
      const (wh + wl) (Int64.logor (Int64.shift_left vh wl) vl)
  | _ -> intern (Concat (hi, lo))

let rec zext w e =
  let we = e.ewidth in
  if w = we then e
  else
    match e.node with
    | Const (_, v) -> const w v
    | Zext (w', inner) when w' >= inner.ewidth -> zext w inner
    | _ -> intern (Zext (w, e))

let rec sext w e =
  let we = e.ewidth in
  if w = we then e
  else
    match e.node with
    | Const (_, v) -> const w (to_signed we v)
    | Sext (w', inner) when w' >= inner.ewidth -> sext w inner
    | Zext (w', inner) when w' > inner.ewidth -> zext w inner
    | _ -> intern (Sext (w, e))

let and_ a b =
  if is_false a || is_false b then false_
  else if is_true a then b
  else if is_true b then a
  else binop And a b

let or_ a b =
  if is_true a || is_true b then true_
  else if is_false a then b
  else if is_false b then a
  else binop Or a b

let conj = List.fold_left and_ true_
let eq a b = cmp Eq a b
let ne a b = not_ (cmp Eq a b)

(* ------------------------------------------------------------------ *)
(* Traversals                                                           *)
(* ------------------------------------------------------------------ *)

(* All traversals are DAG-aware: nodes are visited once, keyed by tag.
   Subtrees without variables are skipped outright via [evars]. *)

let iter_vars f e =
  let seen = Hashtbl.create 64 in
  let rec go e =
    if e.evars && not (Hashtbl.mem seen e.tag) then begin
      Hashtbl.add seen e.tag ();
      match e.node with
      | Const _ -> ()
      | Var v -> f v
      | Unop (_, a) | Extract (_, _, a) | Zext (_, a) | Sext (_, a) -> go a
      | Binop (_, a, b) | Cmp (_, a, b) | Concat (a, b) ->
          go a;
          go b
      | Ite (c, a, b) ->
          go c;
          go a;
          go b
    end
  in
  go e

let vars e =
  let tbl = Hashtbl.create 16 in
  iter_vars (fun v -> Hashtbl.replace tbl v.vid v) e;
  Hashtbl.fold (fun _ v acc -> v :: acc) tbl []

let contains_var_memo (memo : (int, bool) Hashtbl.t) pred e =
  let rec go e =
    if not e.evars then false
    else
      match Hashtbl.find_opt memo e.tag with
      | Some r -> r
      | None ->
          let r =
            match e.node with
            | Const _ -> false
            | Var v -> pred v
            | Unop (_, a) | Extract (_, _, a) | Zext (_, a) | Sext (_, a) ->
                go a
            | Binop (_, a, b) | Cmp (_, a, b) | Concat (a, b) -> go a || go b
            | Ite (c, a, b) -> go c || go a || go b
          in
          Hashtbl.add memo e.tag r;
          r
  in
  go e

let contains_var pred e = contains_var_memo (Hashtbl.create 64) pred e
let has_any_var e = e.evars

(** Substitute variables by [f]; [None] keeps the variable. *)
let subst (f : var -> t option) (e : t) : t =
  let memo = Hashtbl.create 64 in
  let rec go e =
    if not e.evars then e
    else
      match Hashtbl.find_opt memo e.tag with
      | Some r -> r
      | None ->
          let r =
            match e.node with
            | Const _ -> e
            | Var v -> ( match f v with Some e' -> e' | None -> e)
            | Unop (op, a) -> unop op (go a)
            | Binop (op, a, b) -> binop op (go a) (go b)
            | Cmp (op, a, b) -> cmp op (go a) (go b)
            | Ite (c, a, b) -> ite (go c) (go a) (go b)
            | Extract (hi, lo, a) -> extract hi lo (go a)
            | Concat (a, b) -> concat (go a) (go b)
            | Zext (w, a) -> zext w (go a)
            | Sext (w, a) -> sext w (go a)
          in
          Hashtbl.add memo e.tag r;
          r
  in
  go e

(** Evaluate under a full assignment; raises [Not_found] on unassigned
    variables. *)
let eval (env : (int, int64) Hashtbl.t) (e : t) : int64 =
  let memo = Hashtbl.create 64 in
  let rec go e =
    match Hashtbl.find_opt memo e.tag with
    | Some v -> v
    | None ->
        let v =
          match e.node with
          | Const (_, v) -> v
          | Var v -> mask v.vwidth (Hashtbl.find env v.vid)
          | Unop (op, a) -> eval_unop a.ewidth op (go a)
          | Binop (op, a, b) -> eval_binop a.ewidth op (go a) (go b)
          | Cmp (op, a, b) ->
              if eval_cmp a.ewidth op (go a) (go b) then 1L else 0L
          | Ite (c, a, b) -> if go c = 1L then go a else go b
          | Extract (hi, lo, a) ->
              mask (hi - lo + 1) (Int64.shift_right_logical (go a) lo)
          | Concat (a, b) ->
              Int64.logor (Int64.shift_left (go a) b.ewidth) (go b)
          | Zext (w, a) -> mask w (go a)
          | Sext (w, a) -> mask w (to_signed a.ewidth (go a))
        in
        Hashtbl.add memo e.tag v;
        v
  in
  go e

(* ------------------------------------------------------------------ *)
(* Printing                                                             *)
(* ------------------------------------------------------------------ *)

let string_of_unop = function
  | Not -> "not" | Neg -> "neg" | Popcnt -> "popcnt" | Clz -> "clz" | Ctz -> "ctz"

let string_of_binop = function
  | Add -> "+" | Sub -> "-" | Mul -> "*"
  | Udiv -> "/u" | Urem -> "%u" | Sdiv -> "/s" | Srem -> "%s"
  | And -> "&" | Or -> "|" | Xor -> "^"
  | Shl -> "<<" | Lshr -> ">>u" | Ashr -> ">>s"
  | Rotl -> "rotl" | Rotr -> "rotr"

let string_of_cmp = function
  | Eq -> "==" | Ult -> "<u" | Slt -> "<s" | Ule -> "<=u" | Sle -> "<=s"

let rec to_string e =
  match e.node with
  | Const (w, v) -> Printf.sprintf "%Ld:%d" v w
  | Var v -> Printf.sprintf "%s#%d:%d" v.vname v.vid v.vwidth
  | Unop (op, e) -> Printf.sprintf "%s(%s)" (string_of_unop op) (to_string e)
  | Binop (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (to_string a) (string_of_binop op) (to_string b)
  | Cmp (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (to_string a) (string_of_cmp op) (to_string b)
  | Ite (c, a, b) ->
      Printf.sprintf "ite(%s, %s, %s)" (to_string c) (to_string a) (to_string b)
  | Extract (hi, lo, e) -> Printf.sprintf "%s[%d:%d]" (to_string e) hi lo
  | Concat (a, b) -> Printf.sprintf "(%s ++ %s)" (to_string a) (to_string b)
  | Zext (w, e) -> Printf.sprintf "zext%d(%s)" w (to_string e)
  | Sext (w, e) -> Printf.sprintf "sext%d(%s)" w (to_string e)

let pp fmt e = Format.pp_print_string fmt (to_string e)
