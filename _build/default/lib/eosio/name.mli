(** EOSIO account/action names: up to 12 characters from
    [.12345abcdefghijklmnopqrstuvwxyz], base-32 packed into a [uint64]
    exactly as Nodeos does. *)

type t = int64

val of_string : string -> t
(** Raises [Invalid_argument] on characters outside the alphabet or names
    longer than 12 characters. *)

val to_string : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

(** Well-known names. *)

val eosio_token : t
val eosio : t
val transfer : t
val active : t
