(** Parallel fuzzing-campaign orchestrator.

    Drives {!Core.Engine.fuzz} over an arbitrary set of contracts: a
    shared {!Work_queue} drained by N OCaml domains, an optional
    crash-safe {!Journal} enabling resumption after a kill, and an
    aggregation layer merging per-target outcomes into a fleet report.

    Determinism: per-target verdicts depend only on
    [(cfg_engine.cfg_rng_seed, target)] — the engine seeds each target's
    RNG from its account name (see {!Core.Engine.fuzz}) — and the report
    is canonicalised by target name, so {!verdicts_text} is byte-identical
    for any [cc_jobs] and any scheduling, provided
    [cc_engine.cfg_time_limit = None]. *)

module Core = Wasai_core
module Solver = Wasai_smt.Solver
module Metrics = Wasai_support.Metrics

type target_spec = {
  sp_name : string;
      (** campaign-unique identity; doubles as the deployment account, so
          it must be a valid EOSIO name (the RNG seed derives from it) *)
  sp_load : unit -> Core.Engine.target;
      (** called in the worker domain, so parsing/generation cost is paid
          in parallel too *)
}

type config = {
  cc_jobs : int;  (** worker domains, including the calling one; >= 1 *)
  cc_engine : Core.Engine.config;
  cc_journal : string option;  (** append completed targets here *)
  cc_resume : bool;
      (** skip targets already present in [cc_journal]; their journal
          entries are merged into the final report *)
  cc_max_targets : int option;
      (** stop after this many fresh targets (simulates an interrupted
          campaign; also the smoke-test budget) *)
  cc_progress : (Journal.entry -> unit) option;
      (** called under the campaign lock after each completed target *)
}

val default_config : config
(** [cc_jobs = 1], engine defaults, no journal, no resume, no cap. *)

type report = {
  cr_results : Journal.entry list;  (** sorted by target name *)
  cr_requested : int;  (** targets in the input set *)
  cr_skipped : int;  (** satisfied from the journal instead of re-fuzzed *)
  cr_jobs : int;
  cr_wall : float;  (** campaign wall-clock, seconds *)
}

val run : config -> target_spec list -> report
(** Raises [Invalid_argument] on duplicate target names,
    {!Journal.Malformed} when resuming from a corrupt journal, and
    [Failure] when a target's load/fuzz raised (after all workers have
    drained; the journal keeps every target completed before the
    failure). *)

(** {2 Aggregation} *)

val flag_counts : report -> (Core.Scanner.flag * int) list
(** Per-flag count of flagged contracts, in {!Core.Scanner.all_flags}
    order. *)

val vulnerable_count : report -> int
val total_branches : report -> int

val solver_totals : report -> Solver.stats
(** Fleet-wide sum of per-target solver/cache counters.  Deterministic
    for any [cc_jobs]: solver sessions are per-target and never shared
    across domains, so each addend is a function of its target alone. *)

val latency_histogram : report -> Metrics.Histogram.t
(** Per-target fuzzing latencies (merged as if per-worker). *)

val verdicts_text : report -> string
(** Canonical per-target verdict lines, sorted by name, with every
    scheduling-dependent field (latency, wall-clock) excluded — the
    byte-identical artefact for comparing runs at different [cc_jobs]. *)

val to_text : report -> string
(** Full human-readable campaign report: fleet summary, per-flag contract
    counts, latency percentiles, then {!verdicts_text}. *)
