lib/symbolic/replay.ml: Array Convention Hashtbl Int32 Int64 List Memmodel Option Printf Wasai_smt Wasai_wasabi Wasai_wasm
