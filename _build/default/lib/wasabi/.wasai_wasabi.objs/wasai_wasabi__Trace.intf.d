lib/wasabi/trace.mli: Wasai_wasm
