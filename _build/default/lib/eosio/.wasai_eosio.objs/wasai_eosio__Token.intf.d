lib/eosio/token.mli: Action Asset Chain Name
