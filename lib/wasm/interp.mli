(** Stack-machine interpreter for Wasm modules.

    Execution is fuel-metered (EOSIO imposes a per-action deadline; this
    imposes an instruction budget) and re-entrant: host functions may
    invoke other instances, which is how inline actions and notifications
    run nested contract code. *)

exception Exhaustion of string
(** Fuel budget or call-stack depth exceeded. *)

type host_func = {
  hf_name : string;
  hf_type : Types.func_type;
  hf_fn : instance -> Values.value list -> Values.value list;
      (** receives the calling instance (for memory access) *)
}

and func_inst =
  | Host_func of host_func
  | Wasm_func of instance * Ast.func * Types.func_type

and instance = {
  module_ : Ast.module_;
  mutable funcs : func_inst array;  (** whole function index space *)
  memory : Memory.t option;
  globals : Values.value array;
  table : func_inst option array;
  mutable fuel : int;
  mutable depth : int;
  max_depth : int;
}

type extern =
  | Extern_func of host_func
  | Extern_memory of Memory.t
  | Extern_global of Values.value

type resolver = string -> string -> extern option
(** Import resolver: maps (module, name) to a host definition. *)

exception Link_error of string

val func_type_of : func_inst -> Types.func_type

val instantiate :
  ?fuel:int -> ?max_depth:int -> resolver -> Ast.module_ -> instance
(** Instantiate a module: resolve imports, allocate memory/table/globals,
    run element and data segments.  Raises {!Link_error} on unresolved or
    mismatched imports. *)

val alloc_instance :
  ?fuel:int -> ?max_depth:int -> resolver -> Ast.module_ -> instance
(** The allocation phase of {!instantiate} alone: imports, memory,
    globals, table, element and data segments — but {e not} the start
    function.  Alternative execution tiers ({!Compile}) allocate through
    this and drive the start function themselves. *)

val eval_const_expr : Values.value array -> Ast.instr list -> Values.value
(** Evaluate a constant expression (segment offsets, global initialisers)
    against the given global frame. *)

val get_memory : instance -> Memory.t

val rebind_imports : instance -> resolver -> unit
(** Re-resolve the module's function imports against a new resolver and
    patch them into the instance's function index space.  Host functions
    close over per-invocation state (e.g. the action context), so a
    pooled instance must rebind before every reuse.  Raises
    {!Link_error} — with the same messages as {!instantiate} — before
    mutating anything. *)

val reset_globals : instance -> unit
(** Re-evaluate every global initialiser, returning the globals to their
    post-instantiation values.  Used when resetting a pooled instance. *)

val invoke_func :
  instance -> func_inst -> Values.value list -> Values.value list

val invoke_export :
  instance -> string -> Values.value list -> Values.value list
(** Invoke an exported function by name; traps if absent. *)

val set_fuel : instance -> int -> unit
val remaining_fuel : instance -> int

(** {1 Pure operator semantics}

    The per-instruction evaluators, exposed for differential testing and
    for embedders that need exact Wasm arithmetic. *)

val eval_int_unary : Types.num_type -> Ast.int_unop -> Values.value -> Values.value

val eval_int_binary :
  Types.num_type -> Ast.int_binop -> Values.value -> Values.value -> Values.value

val eval_int_compare :
  Types.num_type -> Ast.int_relop -> Values.value -> Values.value -> Values.value

val eval_float_unary :
  Types.num_type -> Ast.float_unop -> Values.value -> Values.value

val eval_float_binary :
  Types.num_type -> Ast.float_binop -> Values.value -> Values.value -> Values.value

val eval_float_compare :
  Types.num_type -> Ast.float_relop -> Values.value -> Values.value -> Values.value

val eval_convert : Ast.cvtop -> Values.value -> Values.value
