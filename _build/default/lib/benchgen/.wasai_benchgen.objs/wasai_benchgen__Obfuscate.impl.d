lib/benchgen/obfuscate.ml: Array List Wasai_wasm
